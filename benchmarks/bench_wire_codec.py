"""Wire-codec microbenchmark: the process boundary's encode/decode cost.

The paper attributes the write path's lower matching throughput to
"the overhead for (de-)serializing and parsing after-images" (Section
6.3) — which is exactly the cost a process-per-partition deployment
pays on every hop.  This bench measures the binary wire format against
the JSON codec on a representative write envelope (the evaluation's
5-string/5-int document) and gates the headline claim: **binary
encode + lazy decode must clear at least 3x the JSON round-trip**.

Batch mode is reported alongside: the batch pickle stream's memo table
interns repeated collection/field keys, so per-message cost and bytes
drop further.
"""

import random
import time

from repro.event.codec import JsonCodec
from repro.event.wire import BinaryCodec, materialize
from repro.sim.workload import generate_document

ROUNDS = 5
MESSAGES = 2_000
BATCH = 64


def representative_envelope(index: int = 0) -> dict:
    rng = random.Random(1 + index)
    document = generate_document(rng, 123456 + index, 987654)
    return {
        "kind": "write",
        "key": 123456 + index,
        "version": 3,
        "op": "update",
        "collection": "items",
        "timestamp": 1718000000.25,
        "document": document,
    }


def best_of(func, rounds=ROUNDS):
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_binary_codec_beats_json(emit):
    """Acceptance gate: >= 3x on single-message encode + lazy decode."""
    json_codec = JsonCodec()
    eager = BinaryCodec(lazy_documents=False)
    lazy = BinaryCodec(lazy_documents=True)
    envelope = representative_envelope()

    def json_roundtrip():
        for _ in range(MESSAGES):
            json_codec.decode(json_codec.encode(envelope))

    def binary_eager_roundtrip():
        for _ in range(MESSAGES):
            eager.decode(eager.encode(envelope))

    def binary_lazy_roundtrip():
        # The process model's hot path: the worker decodes the
        # envelope but the after-image stays a raw slice until (and
        # unless) matching touches it.
        for _ in range(MESSAGES):
            lazy.decode(lazy.encode(envelope))

    t_json = best_of(json_roundtrip)
    t_eager = best_of(binary_eager_roundtrip)
    t_lazy = best_of(binary_lazy_roundtrip)

    per = 1e6 / MESSAGES
    emit("Wire codec round-trip, representative write envelope")
    emit("(5x10-char strings + 5 ints, single message):")
    emit(f"  json          : {t_json * per:8.2f} us/msg")
    emit(f"  binary eager  : {t_eager * per:8.2f} us/msg "
         f"({t_json / t_eager:.2f}x)")
    emit(f"  binary lazy   : {t_lazy * per:8.2f} us/msg "
         f"({t_json / t_lazy:.2f}x)")
    assert t_json / t_lazy >= 3.0, (
        f"binary lazy round-trip only {t_json / t_lazy:.2f}x over JSON "
        f"(required: >= 3x)"
    )
    # Sanity: both decoders reproduce the payload.
    assert materialize(lazy.decode(lazy.encode(envelope))) == envelope
    assert eager.decode(eager.encode(envelope)) == envelope


def test_batch_mode_amortizes_further(emit):
    """Batch framing interns repeated keys: faster AND smaller."""
    json_codec = JsonCodec()
    lazy = BinaryCodec(lazy_documents=True)
    batch = [representative_envelope(i) for i in range(BATCH)]
    rounds = max(1, MESSAGES // BATCH)

    def json_batch():
        for _ in range(rounds):
            for payload in batch:  # JSON has no batch frame: N messages
                json_codec.decode(json_codec.encode(payload))

    def binary_batch():
        for _ in range(rounds):
            lazy.decode_batch(lazy.encode_batch(batch))

    t_json = best_of(json_batch)
    t_binary = best_of(binary_batch)
    json_bytes = sum(len(json_codec.encode(p)) for p in batch)
    binary_bytes = len(lazy.encode_batch(batch))

    count = rounds * BATCH
    emit(f"Batch round-trip ({BATCH} envelopes/batch):")
    emit(f"  json   : {t_json * 1e6 / count:8.2f} us/msg, "
         f"{json_bytes / BATCH:7.1f} B/msg")
    emit(f"  binary : {t_binary * 1e6 / count:8.2f} us/msg, "
         f"{binary_bytes / BATCH:7.1f} B/msg "
         f"({t_json / t_binary:.2f}x faster)")
    assert t_json / t_binary >= 3.0
    assert binary_bytes < json_bytes


def test_lazy_decode_skips_pruned_documents(emit):
    """A consumer that never touches the after-image (a stale or
    index-pruned write) pays only the envelope-skeleton decode."""
    lazy = BinaryCodec(lazy_documents=True)
    eager = BinaryCodec(lazy_documents=False)
    batch = [representative_envelope(i) for i in range(BATCH)]
    wires = [lazy.encode_batch(batch)] * max(1, MESSAGES // BATCH)

    t_lazy = best_of(lambda: [lazy.decode_batch(w) for w in wires])
    t_eager = best_of(lambda: [eager.decode_batch(w) for w in wires])

    count = len(wires) * BATCH
    emit("Decode-only, documents never touched (pruned-write path):")
    emit(f"  eager : {t_eager * 1e6 / count:8.2f} us/msg")
    emit(f"  lazy  : {t_lazy * 1e6 / count:8.2f} us/msg "
         f"({t_eager / t_lazy:.2f}x)")
    assert t_lazy < t_eager
