"""Benchmarks for the §8.1 extension features.

* aggregation stage: cost of one match event against a live aggregate
  view, and full-pipeline throughput filtering -> aggregation;
* notification collapsing: compression ratio on a write-hotspot burst
  (the client-resource scenario the paper motivates).
"""

import random

import pytest

from repro.core.aggregation import AggregateSpec, AggregationNode
from repro.core.collapsing import NotificationCollapser
from repro.core.filtering import FilteringNode, MatchEvent
from repro.core.partitioning import NodeCoordinates
from repro.core.stages import pipe
from repro.query.engine import Query
from repro.types import AfterImage, ChangeNotification, MatchType, WriteKind

QUERY = Query({"category": "bikes"})
SPECS = (
    AggregateSpec("count"),
    AggregateSpec("sum", "price"),
    AggregateSpec("avg", "price"),
    AggregateSpec("min", "price"),
    AggregateSpec("max", "price"),
)


def test_aggregation_event_cost(benchmark):
    """Steady-state cost of one change event on a 1 000-member result."""
    node = AggregationNode()
    rng = random.Random(5)
    bootstrap = [
        {"_id": index, "category": "bikes", "price": rng.randrange(1000)}
        for index in range(1000)
    ]
    node.register_query(QUERY, bootstrap, {}, aggregates=SPECS)
    state = {"version": 1}

    def one_change():
        state["version"] += 1
        event = MatchEvent(
            QUERY.query_id, MatchType.CHANGE, 500,
            {"_id": 500, "category": "bikes",
             "price": state["version"] % 1000},
            state["version"], 0.0, False,
        )
        return node.handle_event(event)

    benchmark(one_change)


def test_filtering_to_aggregation_pipeline_throughput(benchmark):
    """1 000 writes through filtering -> aggregation, end to end."""
    rng = random.Random(7)

    def run_pipeline():
        filtering = FilteringNode(NodeCoordinates(0, 0))
        aggregation = AggregationNode()
        filtering.register_query(QUERY, [], {}, now=0.0)
        aggregation.register_query(QUERY, [], {}, aggregates=SPECS)
        changes = 0
        for index in range(1000):
            doc = {"_id": index % 100,
                   "category": rng.choice(["bikes", "boards"]),
                   "price": rng.randrange(1000)}
            after = AfterImage(index % 100, index + 1, WriteKind.UPDATE, doc)
            changes += len(
                pipe(aggregation, filtering.process_write(after, now=0.0))
            )
        return changes

    changes = benchmark.pedantic(run_pipeline, rounds=3, iterations=1)
    assert changes > 0


def test_collapsing_compression_on_hotspot(benchmark, emit):
    """A hot-key burst: 1 000 updates to 10 keys within one window."""
    def run_burst():
        delivered = []
        collapser = NotificationCollapser(delivered.append,
                                          window_seconds=10.0)
        for index in range(1000):
            collapser.offer(ChangeNotification(
                subscription_id="s", query_id="q",
                match_type=MatchType.CHANGE, key=index % 10,
                document={"_id": index % 10, "v": index},
            ))
        collapser.flush()
        return collapser.compression_ratio, len(delivered)

    ratio, delivered = benchmark.pedantic(run_burst, rounds=3, iterations=1)
    emit(f"hotspot burst: 1000 notifications -> {delivered} delivered "
         f"(compression {ratio:.0f}x)")
    assert delivered == 10
    assert ratio == 100.0
