"""Figure 4: read scalability.

"The number of serviceable real-time queries by the number of query
partitions at 1 000 ops/s under different SLAs."  For each cluster of
1, 2, 4, 8, 16 query partitions (1 write partition), the query load
grows in +500 steps until the 99th-percentile latency exceeds the SLA;
reported is the last sustainable load per SLA in {20, 30, 50, 100} ms.

Paper's anchors: a single node sustains 1 500 and fails at 2 000
queries; 16 nodes sustain ~29 000 (≈ linear).  Our simulated substrate
reproduces the shape; absolute knees are calibration-dependent.
"""

import pytest

from repro.sim.experiment import (
    DEFAULT_SLAS_MS,
    sustainable_per_sla,
    sweep_query_load,
)

QUERY_PARTITIONS = (1, 2, 4, 8, 16)
WRITE_RATE = 1000.0


def run_read_scalability():
    results = {}
    for qp in QUERY_PARTITIONS:
        points = sweep_query_load(
            qp, write_partitions=1, write_rate=WRITE_RATE, step=500,
            max_sla_ms=max(DEFAULT_SLAS_MS), duration=6.0,
        )
        results[qp] = (points, sustainable_per_sla(points, DEFAULT_SLAS_MS))
    return results


@pytest.mark.benchmark(min_rounds=1, max_time=0.01, warmup=False)
def test_fig4_read_scalability(benchmark, emit):
    results = benchmark.pedantic(run_read_scalability, rounds=1, iterations=1)
    emit("Figure 4 — Read scalability: sustainable real-time queries by")
    emit(f"query partitions (QP) at {WRITE_RATE:.0f} ops/s, per p99 SLA")
    emit("=" * 64)
    header = "QP   " + "".join(f"  SLA {sla:>5.0f}ms" for sla in DEFAULT_SLAS_MS)
    emit(header)
    for qp, (points, sustainable) in results.items():
        row = f"{qp:<5d}" + "".join(
            f"  {sustainable[sla]:>10.0f}" for sla in DEFAULT_SLAS_MS
        )
        emit(row)
    emit("")
    emit("Raw sweep points (queries -> p99 ms):")
    for qp, (points, _) in results.items():
        series = ", ".join(
            f"{point.load:.0f}:{point.stats.p99:.1f}" for point in points
        )
        emit(f"  {qp} QP: {series}")
    emit("")
    from repro.sim.plotting import ascii_plot

    emit(ascii_plot(
        {
            f"{sla:.0f}ms SLA": [
                (qp, results[qp][1][sla]) for qp in QUERY_PARTITIONS
            ]
            for sla in DEFAULT_SLAS_MS
        },
        log_x=True, log_y=True,
        x_label="query partitions", y_label="sustainable queries",
    ))

    # Shape assertions: linear scaling within 25% across the sweep, and
    # monotonically non-decreasing capacity with looser SLAs.
    for sla in DEFAULT_SLAS_MS:
        base = results[1][1][sla]
        assert base >= 1000, f"single node too weak under {sla}ms"
        for qp in QUERY_PARTITIONS[1:]:
            scaled = results[qp][1][sla]
            assert scaled >= qp * base * 0.75, (
                f"sub-linear read scaling at {qp} QP under {sla}ms SLA: "
                f"{scaled} vs {qp}x{base}"
            )
    for qp in QUERY_PARTITIONS:
        sustainable = results[qp][1]
        ordered = [sustainable[sla] for sla in sorted(DEFAULT_SLAS_MS)]
        assert ordered == sorted(ordered), "looser SLA must not shrink capacity"


@pytest.mark.benchmark(min_rounds=1, max_time=0.01, warmup=False)
def test_fig4_contention_anomaly(benchmark, emit):
    """The paper's 16-QP anomaly: under virtualization-host CPU
    contention the tightest SLA (20 ms) supports disproportionately
    fewer queries (23 500 vs >28 500 for all other SLAs).  We enable the
    contention model and reproduce the dip."""
    from repro.sim.cluster_model import ClusterCosts
    from repro.sim.experiment import sweep_query_load, sustainable_per_sla

    def run():
        costs = ClusterCosts(contention_per_node=0.015,
                             contention_free_nodes=8)
        points = sweep_query_load(
            16, write_partitions=1, write_rate=WRITE_RATE, step=500,
            max_sla_ms=max(DEFAULT_SLAS_MS), duration=6.0, costs=costs,
        )
        return sustainable_per_sla(points, DEFAULT_SLAS_MS)

    sustainable = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Figure 4 anomaly — 16 QP with CPU contention enabled")
    for sla in DEFAULT_SLAS_MS:
        emit(f"  SLA {sla:>5.0f} ms: {sustainable[sla]:>8.0f} queries")
    # The 20 ms capacity trails the loosest SLA by a visible margin,
    # while the 100 ms capacity remains near the contention-free level.
    assert sustainable[20.0] < sustainable[100.0] * 0.92
    assert sustainable[100.0] >= 16 * 1500 * 0.75
