"""Figure 5: write scalability.

"Sustainable write throughput by the number of write partitions,
serving 1 000 active real-time queries under different SLAs."  For each
cluster of 1, 2, 4, 8, 16 write partitions (1 query partition), the
insert rate grows until the p99 exceeds the SLA.

Paper's anchors: 1 write partition saturates around 1.5-1.6k ops/s
with 1 000 queries; 16 partitions reach ~26 000 ops/s (≈ linear).
"""

import pytest

from repro.sim.experiment import (
    DEFAULT_SLAS_MS,
    sustainable_per_sla,
    sweep_write_load,
)

WRITE_PARTITIONS = (1, 2, 4, 8, 16)
QUERIES = 1000


def run_write_scalability():
    results = {}
    for wp in WRITE_PARTITIONS:
        step = 500.0 if wp <= 4 else 1000.0
        points = sweep_write_load(
            wp, query_partitions=1, queries=QUERIES, step=step,
            max_sla_ms=max(DEFAULT_SLAS_MS), duration=6.0,
        )
        results[wp] = (points, sustainable_per_sla(points, DEFAULT_SLAS_MS))
    return results


@pytest.mark.benchmark(min_rounds=1, max_time=0.01, warmup=False)
def test_fig5_write_scalability(benchmark, emit):
    results = benchmark.pedantic(run_write_scalability, rounds=1, iterations=1)
    emit("Figure 5 — Write scalability: sustainable ops/s by write")
    emit(f"partitions (WP) with {QUERIES} active real-time queries, per SLA")
    emit("=" * 64)
    header = "WP   " + "".join(f"  SLA {sla:>5.0f}ms" for sla in DEFAULT_SLAS_MS)
    emit(header)
    for wp, (points, sustainable) in results.items():
        row = f"{wp:<5d}" + "".join(
            f"  {sustainable[sla]:>10.0f}" for sla in DEFAULT_SLAS_MS
        )
        emit(row)
    emit("")
    emit("Raw sweep points (ops/s -> p99 ms):")
    for wp, (points, _) in results.items():
        series = ", ".join(
            f"{point.load:.0f}:{point.stats.p99:.1f}" for point in points
        )
        emit(f"  {wp} WP: {series}")
    emit("")
    from repro.sim.plotting import ascii_plot

    emit(ascii_plot(
        {
            f"{sla:.0f}ms SLA": [
                (wp, results[wp][1][sla]) for wp in WRITE_PARTITIONS
            ]
            for sla in DEFAULT_SLAS_MS
        },
        log_x=True, log_y=True,
        x_label="write partitions", y_label="sustainable ops/s",
    ))

    # Shape: linear write scaling under the loosest SLA, and the paper's
    # observation that write-heavy load saturates at a lower aggregate
    # match throughput than read-heavy load.
    loosest = max(DEFAULT_SLAS_MS)
    base = results[1][1][loosest]
    assert base >= 1000, "single write partition too weak"
    for wp in WRITE_PARTITIONS[1:]:
        scaled = results[wp][1][loosest]
        assert scaled >= wp * base * 0.7, (
            f"sub-linear write scaling at {wp} WP: {scaled} vs {wp}x{base}"
        )
    # 16 WP x 1k queries (matches/s) < 16 QP-equivalent read capacity at
    # 1k ops/s — the (de)serialization overhead asymmetry of Section 6.3:
    # per-write parse cost makes a match on the write-heavy path dearer.
    write_heavy_matches = results[16][1][loosest] * QUERIES
    assert write_heavy_matches < 16 * 2000 * 1000 * 1.05


# ---------------------------------------------------------------------------
# Functional executor axis: the real write path per execution substrate
# ---------------------------------------------------------------------------

#: The executor axis of the *functional* write path (the sweep above is
#: simulated).  The process model round-trips every batch through a
#: forked worker over the binary wire codec — on a single core that is
#: pure overhead; with real cores it is the write-scalability story.
FUNCTIONAL_EXECUTORS = {
    "threaded": {"execution_model": "threaded"},
    "process": {"execution_model": "process", "process_workers": 2},
}


@pytest.mark.parametrize("executor", sorted(FUNCTIONAL_EXECUTORS))
def test_write_path_throughput_by_executor(executor, emit):
    """Insert -> notification throughput of the running stack, per
    executor (reported, not gated: relative standings depend on the
    host's core count — see ``bench_process_scaling.py`` for the
    multi-core gate)."""
    import threading
    import time as _time

    from repro.core.cluster import InvaliDBCluster
    from repro.core.config import InvaliDBConfig
    from repro.core.server import AppServer
    from repro.event.broker import Broker

    broker = Broker()
    config = InvaliDBConfig(
        query_partitions=1, write_partitions=2,
        **FUNCTIONAL_EXECUTORS[executor],
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("fig5-functional", broker, config=config)
    try:
        received = []
        lock = threading.Lock()

        def on_change(notification):
            with lock:
                received.append(notification)

        app.subscribe("stream", {"v": {"$gte": 0}}, on_change=on_change)
        writes = 1000
        start = _time.perf_counter()
        for index in range(writes):
            app.insert("stream", {"_id": index, "v": index % 50})
        deadline = _time.monotonic() + 30.0
        while _time.monotonic() < deadline:
            with lock:
                if len(received) >= writes:
                    break
            _time.sleep(0.005)
        elapsed = _time.perf_counter() - start
        with lock:
            delivered = len(received)
        assert delivered == writes, f"only {delivered}/{writes} delivered"
        emit(f"functional write path [{executor}]: "
             f"{writes / elapsed:,.0f} writes/s to notification "
             f"({elapsed * 1e3 / writes:.2f} ms/write amortized)")
    finally:
        app.close()
        cluster.stop()
        broker.close()
