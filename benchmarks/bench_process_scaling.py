"""Multi-core smoke: the process model must out-scale the GIL.

The point of process-per-partition execution is that matching compute
runs on real cores instead of time-slicing one GIL.  On a machine with
at least 4 cores, a CPU-bound matching workload (many predicate
evaluations per write, index disabled so every query is evaluated)
must clear **>= 2x** the threaded model's throughput with 4 workers.

On fewer cores the comparison is meaningless (worker round-trips are
pure overhead when everything shares one core), so the gate is
guarded by ``os.cpu_count()``.
"""

import os
import threading
import time

import pytest

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.event.broker import Broker

CORES_REQUIRED = 4
QUERIES = 300
WRITES = 600

pytestmark = pytest.mark.skipif(
    (os.cpu_count() or 1) < CORES_REQUIRED,
    reason=f"multi-core scaling smoke needs >= {CORES_REQUIRED} cores "
           f"(found {os.cpu_count()})",
)


def measure_throughput(**config_kwargs) -> float:
    """Writes/s to full notification delivery on a compute-heavy grid.

    ``query_index=False`` forces a linear scan over every registered
    query per write — the CPU-bound regime where parallel matching
    pays.  Only one query can match each write, so delivery counting
    stays simple.
    """
    broker = Broker()
    config = InvaliDBConfig(
        query_partitions=2, write_partitions=2,
        query_index=False,
        shared_predicate_memo=False,
        **config_kwargs,
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("scaling-smoke", broker, config=config)
    try:
        received = []
        lock = threading.Lock()

        def on_change(notification):
            with lock:
                received.append(notification)

        # One matchable query + a wall of never-matching range
        # predicates that must all be evaluated per write.
        app.subscribe("stream", {"v": {"$gte": 0}}, on_change=on_change)
        for bound in range(1, QUERIES):
            app.subscribe(
                "stream",
                {"v": {"$gte": bound * 10_000_000},
                 "pad": {"$ne": f"sentinel-{bound}"}},
                on_change=on_change,
            )
        best = None
        for _ in range(3):
            with lock:
                base = len(received)
            start = time.perf_counter()
            for index in range(WRITES):
                app.insert("stream", {"_id": (base, index),
                                      "v": 1 + index % 7,
                                      "pad": "payload " * 4})
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                with lock:
                    if len(received) >= base + WRITES:
                        break
                time.sleep(0.002)
            elapsed = time.perf_counter() - start
            with lock:
                assert len(received) >= base + WRITES, (
                    f"only {len(received) - base}/{WRITES} delivered"
                )
            best = elapsed if best is None else min(best, elapsed)
        return WRITES / best
    finally:
        app.close()
        cluster.stop()
        broker.close()


def test_process_outscales_threaded_on_multicore(emit):
    threaded = measure_throughput(execution_model="threaded")
    process = measure_throughput(
        execution_model="process", process_workers=4,
    )
    ratio = process / threaded
    emit(f"CPU-bound matching, {QUERIES} linear-scan queries/write:")
    emit(f"  threaded (GIL-bound) : {threaded:10,.0f} writes/s")
    emit(f"  process (4 workers)  : {process:10,.0f} writes/s")
    emit(f"  speedup: {ratio:.2f}x on {os.cpu_count()} cores")
    assert ratio >= 2.0, (
        f"process model only {ratio:.2f}x over threaded with 4 workers "
        f"on {os.cpu_count()} cores (required: >= 2x)"
    )
