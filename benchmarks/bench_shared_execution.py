"""Shared multi-query execution benchmarks (PR 7).

Measures the two SharedDB-style sharing layers against the per-query
paths they gate:

* filtering — the shared predicate DAG vs PR 2's memoized per-query
  matching, swept across query-population overlap (0%..100% of the
  population being pagination variants of one hot filter) at 1k and
  10k registered queries;
* sorting — shared window cores vs solo per-query window maintenance
  for same-capacity offset/limit variants of one sorted query;
* the cluster metrics side-by-side: memo hit/miss and DAG share-ratio
  counters exported through the metrics registry.

``test_shared_dag_speedup_gate`` is the CI smoke gate: the DAG must
beat the memoized path by >= 3x at 10k fully-overlapping queries.
"""

from __future__ import annotations

import itertools
import time

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.filtering import FilteringNode
from repro.core.partitioning import NodeCoordinates
from repro.core.server import AppServer
from repro.core.sorting import SortingNode
from repro.event.broker import Broker
from repro.query.engine import Query
from repro.runtime.execution import ExecutionConfig, InlineExecutionModel
from repro.types import AfterImage, MatchType, WriteKind

from repro.core.filtering import MatchEvent

# A deep production-shaped feed filter: an $or of three conjunctions
# plus a top-level guard.  Roughly 17% of the write stream below
# matches it, so neither path degenerates into pure event construction.
def _hot_filter(salt: int = 0):
    return {
        "$or": [
            {"$and": [{"category": "news"},
                      {"score": {"$gte": 80 + salt}}]},
            {"$and": [{"category": "sports"},
                      {"score": {"$gte": 60 + salt}},
                      {"region": "eu"}]},
            {"$and": [{"author.verified": True},
                      {"score": {"$gte": 90 + salt}}]},
        ],
        "hidden": {"$ne": True},
    }


def _population(total: int, overlap: float):
    """*total* queries; ``overlap`` of them are offset/limit pagination
    variants of the hot filter, the rest carry per-query thresholds."""
    hot = int(total * overlap)
    queries = []
    for index in range(total):
        salt = 0 if index < hot else 1 + index
        queries.append(Query(
            _hot_filter(salt),
            sort=[("score", -1)],
            limit=(index % 1000) + 1,
            offset=index // 1000,
        ))
    return queries


def _write_documents(writes: int):
    categories = ["news", "sports", "opinion", "local"]
    documents = []
    for index in range(writes):
        documents.append({
            "category": categories[index % len(categories)],
            "score": (index * 37) % 100,
            "region": "eu" if index % 3 else "apac",
            "author": {"verified": index % 5 == 0},
            "hidden": index % 7 == 0,
        })
    return documents


def _loaded_node(queries, shared_dag: bool) -> FilteringNode:
    node = FilteringNode(NodeCoordinates(0, 0), memoize=True,
                         shared_dag=shared_dag)
    for query in queries:
        node.register_query(query, [], {}, now=0.0)
    return node


def _drive(node: FilteringNode, documents, key_base: int) -> int:
    events = 0
    for offset, document in enumerate(documents):
        key = key_base + offset
        image = AfterImage(key, 1, WriteKind.INSERT,
                           {**document, "_id": key})
        events += len(node.process_write(image, now=0.0))
    return events


def _per_write_seconds(node, documents, repeats: int = 2):
    fresh_keys = itertools.count()
    events = _drive(node, documents, next(fresh_keys) * len(documents))
    best = float("inf")
    for _ in range(repeats):
        key_base = next(fresh_keys) * len(documents)
        started = time.perf_counter()
        _drive(node, documents, key_base)
        best = min(best, time.perf_counter() - started)
    return best / len(documents), events


def test_shared_dag_overlap_sweep(emit):
    """The committed table: per-write matching cost, memoized vs DAG,
    as the population's structural overlap grows."""
    emit("Shared predicate DAG vs memoized per-query matching")
    emit("population: pagination variants of one hot feed filter "
         "(overlap%) +")
    emit("per-query-threshold variants (rest); ~17% of writes match")
    emit()
    emit(f"{'queries':>8} | {'overlap':>7} | {'memo wr/s':>10} | "
         f"{'dag wr/s':>10} | {'speedup':>8} | {'share':>6}")
    emit("-" * 64)
    for total in (1_000, 10_000):
        writes = 40 if total <= 1_000 else 20
        documents = _write_documents(writes)
        for overlap in (0.0, 0.25, 0.5, 0.75, 1.0):
            queries = _population(total, overlap)
            memo_node = _loaded_node(queries, shared_dag=False)
            memo_cost, memo_events = _per_write_seconds(
                memo_node, documents)
            dag_node = _loaded_node(queries, shared_dag=True)
            dag_cost, dag_events = _per_write_seconds(dag_node, documents)
            assert dag_events == memo_events
            share = dag_node.dag.share_ratio
            emit(f"{total:>8} | {overlap:>6.0%} | "
                 f"{1 / memo_cost:>10,.0f} | {1 / dag_cost:>10,.0f} | "
                 f"{memo_cost / dag_cost:>7.1f}x | {share:>6.3f}")
    emit()
    emit("speedup tracks overlap: at 100% every decision rides one")
    emit("evaluated root; at 0% the DAG still shares common subtrees")


def test_shared_dag_speedup_gate():
    """CI smoke gate: >= 3x over the memoized path at 10k
    fully-overlapping queries (acceptance floor; headline is ~5-7x).

    Runs without the pytest-benchmark fixture so it still measures
    under ``--benchmark-disable``.
    """
    queries = _population(10_000, overlap=1.0)
    documents = _write_documents(40)
    memo_cost, memo_events = _per_write_seconds(
        _loaded_node(queries, shared_dag=False), documents)
    dag_node = _loaded_node(queries, shared_dag=True)
    dag_cost, dag_events = _per_write_seconds(dag_node, documents)
    assert dag_events == memo_events
    speedup = memo_cost / dag_cost
    assert speedup >= 3.0, (
        f"shared DAG only {speedup:.1f}x faster than memoized matching"
    )
    assert dag_node.dag.fallbacks == 0
    assert dag_node.dag.share_ratio > 0.99


# ---------------------------------------------------------------------------
# Shared sorted windows
# ---------------------------------------------------------------------------


def _sorted_population(views: int):
    """Same-capacity offset/limit variants of one sorted query."""
    total = 10
    return [
        Query({"score": {"$gte": 0}}, collection="feed",
              sort=[("score", 1)], limit=total - off, offset=off)
        for off in range(min(views, total - 1))
    ]


def _drive_sorted(shared: bool, views: int, events: int):
    node = SortingNode(shared_windows=shared)
    documents = [{"_id": f"k{i}", "score": i * 3} for i in range(30)]
    queries = _sorted_population(views)
    slack = 3
    for query in queries:
        rewritten = query.rewritten_for_subscription(slack)
        bootstrap = sorted(documents, key=query.sort.key)
        bootstrap = bootstrap[: rewritten.limit]
        versions = {doc["_id"]: 1 for doc in bootstrap}
        node.register_query(query, [dict(d) for d in bootstrap],
                            versions, slack=slack)
    versions = {f"k{i}": 1 for i in range(200)}
    started = time.perf_counter()
    for step in range(events):
        key = f"k{step % 60}"
        versions[key] = versions.get(key, 0) + 1
        document = {"_id": key, "score": (step * 13) % 90}
        for query in queries:
            if node.state_of(query.query_id) is None:
                continue  # renewed out after an error; skip for the bench
            node.handle_event(MatchEvent(
                query.query_id, MatchType.ADD, key, dict(document),
                versions[key], float(step), True))
    elapsed = time.perf_counter() - started
    return elapsed, node


def test_shared_window_maintenance(emit):
    """One maintained core vs N solo windows for pagination variants."""
    emit("Shared sorted-window cores vs solo per-query maintenance")
    emit("population: same-capacity offset/limit variants of one "
         "sorted feed query")
    emit()
    emit(f"{'views':>6} | {'solo ev/s':>10} | {'shared ev/s':>11} | "
         f"{'speedup':>8} | {'cmp ratio':>9}")
    emit("-" * 56)
    for views in (2, 4, 8):
        events = 2_000
        solo_elapsed, solo_node = _drive_sorted(False, views, events)
        shared_elapsed, shared_node = _drive_sorted(True, views, events)
        assert shared_node.shared_attach >= views - 1
        ratio = (shared_node.window_comparisons
                 / max(1, solo_node.window_comparisons))
        emit(f"{views:>6} | {events / solo_elapsed:>10,.0f} | "
             f"{events / shared_elapsed:>11,.0f} | "
             f"{solo_elapsed / shared_elapsed:>7.1f}x | {ratio:>9.2f}")
    emit()
    emit("comparisons collapse to ~1/views: the group's window is")
    emit("maintained once and every view reads its slice")


def test_shared_window_comparison_collapse():
    """Functional floor for CI: 8 same-capacity views must do the
    sorted-insert comparison work roughly once, not 8 times."""
    events = 1_000
    _, solo = _drive_sorted(False, 8, events)
    _, shared = _drive_sorted(True, 8, events)
    # All 8 same-capacity views bootstrapped into one core ...
    assert shared.shared_attach == 7
    assert shared.shared_miss == 0
    # ... and the shared path did a fraction of the comparison work.
    assert shared.window_comparisons * 4 < solo.window_comparisons


# ---------------------------------------------------------------------------
# Cluster metrics side-by-side
# ---------------------------------------------------------------------------


def test_cluster_sharing_metrics_side_by_side(emit):
    """memo hit/miss + DAG counters through the metrics registry."""
    emit("Cluster sharing counters (inline model, 200 writes, "
         "60 queries)")
    emit()
    emit(f"{'gate':>10} | {'memo hits':>9} | {'memo miss':>9} | "
         f"{'dag served':>10} | {'dag nodes':>9} | {'share':>6}")
    emit("-" * 68)
    for label, gates in (
        ("memo", {}),
        ("dag", {"shared_query_dag": True}),
    ):
        model = InlineExecutionModel(ExecutionConfig(mode="inline",
                                                     seed=13))
        broker = Broker(execution=model)
        config = InvaliDBConfig(query_partitions=1, write_partitions=1,
                                **gates)
        cluster = InvaliDBCluster(broker, config).start()
        app = AppServer("bench-app", broker, config=config)
        try:
            for index in range(60):
                app.subscribe("feed", _hot_filter(0),
                              sort=[("score", -1)], limit=index + 1)
            broker.drain()
            documents = _write_documents(200)
            for key, document in enumerate(documents):
                app.insert("feed", {**document, "_id": key})
            broker.drain()
            totals = cluster.snapshot()["matching_totals"]
            emit(f"{label:>10} | {totals['memo_hits']:>9,} | "
                 f"{totals['memo_misses']:>9,} | "
                 f"{totals['dag_queries_served']:>10,} | "
                 f"{totals['dag_nodes_evaluated']:>9,} | "
                 f"{totals['dag_share_ratio']:>6.3f}")
            if label == "dag":
                assert totals["dag_queries_served"] > 0
                # 60 pagination variants share one ~12-node tree, so
                # at most ~12 node evaluations back 60 decisions/write.
                assert totals["dag_share_ratio"] > 0.75
        finally:
            app.close()
            cluster.stop()
            broker.close()
            model.shutdown()
    emit()
    emit("the DAG serves every candidate decision from ~one root")
    emit("evaluation per write; the memo path re-walks each query's AST")
