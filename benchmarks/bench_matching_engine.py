"""Micro-benchmarks of the pure-Python matching engine.

Measures the real (not simulated) cost constants behind the cluster
model's calibration: matching one after-image against N parsed queries,
query parsing, canonical hashing, and sorted-window maintenance — plus
the query-count scaling axis of the filtering stage (indexed candidate
matching vs the naive scan over every registered query).
Run on the paper's evaluation workload (Section 6.1).
"""

import itertools
import random
import time

import pytest

from repro.core.filtering import FilteringNode
from repro.core.partitioning import NodeCoordinates
from repro.query.engine import MongoQueryEngine, Query
from repro.query.normalize import query_hash
from repro.sim.workload import (
    PaperWorkload,
    generate_document,
    generate_range_query,
)
from repro.types import AfterImage, WriteKind


@pytest.fixture(scope="module")
def workload():
    return PaperWorkload(total_queries=1000, matching_queries=100, seed=3)


@pytest.fixture(scope="module")
def parsed_queries(workload):
    return [Query(filter_doc) for filter_doc in workload.queries()]


def test_match_one_write_against_1000_queries(benchmark, parsed_queries):
    """The inner loop of a matching node: one after-image vs its whole
    query partition."""
    rng = random.Random(5)
    document = generate_document(rng, "probe", 42)

    def match_all():
        return sum(1 for query in parsed_queries if query.matches(document))

    hits = benchmark(match_all)
    assert hits == 1  # the workload guarantees exactly one match


def test_single_predicate_match(benchmark):
    query = Query({"random": {"$gte": 10, "$lt": 20}})
    document = generate_document(random.Random(5), "probe", 15)
    assert benchmark(query.matches, document)


def test_complex_predicate_match(benchmark):
    query = Query({
        "$or": [
            {"random": {"$gte": 10, "$lt": 20}},
            {"s0": {"$regex": "^a"}},
            {"i1": {"$in": [1, 2, 3]}},
        ],
        "i0": {"$exists": True},
    })
    document = generate_document(random.Random(5), "probe", 15)
    benchmark(query.matches, document)


def test_query_parse_cost(benchmark, workload):
    filters = workload.queries()[:100]

    def parse_all():
        return [Query(filter_doc) for filter_doc in filters]

    parsed = benchmark(parse_all)
    assert len(parsed) == 100


def test_canonical_hash_cost(benchmark):
    filter_doc = {"random": {"$gte": 10, "$lt": 20}}
    value = benchmark(query_hash, filter_doc)
    assert value == query_hash(filter_doc)


# ---------------------------------------------------------------------------
# Query-count scaling: indexed candidate matching vs the naive scan
# ---------------------------------------------------------------------------

QUERY_COUNTS = [10, 100, 1_000, 10_000]


def _scaling_node(query_count: int, use_index: bool) -> FilteringNode:
    """A filtering node loaded with the paper's unit-interval queries."""
    node = FilteringNode(NodeCoordinates(0, 0), use_index=use_index,
                         memoize=use_index)
    for slot in range(query_count):
        node.register_query(Query(generate_range_query(slot, slot + 1)),
                            [], {}, now=0.0)
    return node


def _write_documents(query_count: int, writes: int, seed: int = 11):
    """Evaluation documents whose ``random`` falls into some query slot."""
    rng = random.Random(seed)
    return [
        generate_document(rng, index, rng.randrange(query_count))
        for index in range(writes)
    ]


def _drive(node: FilteringNode, documents, key_base: int) -> int:
    events = 0
    for offset, document in enumerate(documents):
        key = key_base + offset
        image = AfterImage(key, 1, WriteKind.INSERT,
                           {**document, "_id": key})
        events += len(node.process_write(image, now=0.0))
    return events


@pytest.mark.parametrize("mode", ["indexed", "naive"])
@pytest.mark.parametrize("query_count", QUERY_COUNTS)
def test_filtering_query_count_scaling(benchmark, query_count, mode):
    """Per-write cost of the filtering stage as queries grow.

    The naive scan grows linearly with the query count; the predicate
    index holds per-write cost near-constant (one interval stab).
    """
    node = _scaling_node(query_count, use_index=(mode == "indexed"))
    writes = 20 if query_count >= 10_000 else 100
    documents = _write_documents(query_count, writes)
    fresh_keys = itertools.count()

    def run():
        return _drive(node, documents, key_base=next(fresh_keys) * writes)

    events = benchmark(run)
    assert events == writes  # every write matches exactly one query


def _measure_per_write_seconds(query_count: int, use_index: bool,
                               writes: int, repeats: int = 3) -> float:
    """Best-of-N wall time per write through a loaded filtering node."""
    node = _scaling_node(query_count, use_index)
    documents = _write_documents(query_count, writes)
    fresh_keys = itertools.count()
    _drive(node, documents, key_base=next(fresh_keys) * writes)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        key_base = next(fresh_keys) * writes
        started = time.perf_counter()
        _drive(node, documents, key_base=key_base)
        best = min(best, time.perf_counter() - started)
    return best / writes


def test_query_count_scaling_report(emit):
    """The committed scaling table: writes/s, indexed vs naive."""
    emit("Filtering-stage query-count scaling (per-write matching cost)")
    emit("paper workload: random >= i AND random < i+1, one hit per write")
    emit()
    emit(f"{'queries':>8} | {'naive wr/s':>12} | {'indexed wr/s':>12} "
         f"| {'speedup':>8}")
    emit("-" * 52)
    for query_count in QUERY_COUNTS:
        writes = 20 if query_count >= 10_000 else 100
        naive = _measure_per_write_seconds(query_count, False, writes)
        indexed = _measure_per_write_seconds(query_count, True, writes)
        emit(f"{query_count:>8} | {1 / naive:>12,.0f} | "
             f"{1 / indexed:>12,.0f} | {naive / indexed:>7.1f}x")
    emit()
    emit("indexed per-write cost is near-constant: one interval-tree")
    emit("stab + candidate evaluation, independent of the query count")


def test_indexed_vs_naive_speedup_gate():
    """CI smoke gate: the index must beat the scan by >= 3x at 1,000
    registered queries (the acceptance floor; typical is far higher).

    Runs without the pytest-benchmark fixture so it still measures
    under ``--benchmark-disable``.
    """
    naive = _measure_per_write_seconds(1_000, False, writes=100)
    indexed = _measure_per_write_seconds(1_000, True, writes=100)
    speedup = naive / indexed
    assert speedup >= 3.0, (
        f"indexed matching only {speedup:.1f}x faster than naive scan"
    )


def test_sort_1000_documents(benchmark):
    engine = MongoQueryEngine()
    query = engine.parse({}, sort=[("random", -1)])
    rng = random.Random(9)
    documents = [generate_document(rng, i, rng.randrange(10**6))
                 for i in range(1000)]
    ordered = benchmark(engine.sort, query, documents)
    assert len(ordered) == 1000
