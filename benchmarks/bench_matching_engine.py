"""Micro-benchmarks of the pure-Python matching engine.

Measures the real (not simulated) cost constants behind the cluster
model's calibration: matching one after-image against N parsed queries,
query parsing, canonical hashing, and sorted-window maintenance.
Run on the paper's evaluation workload (Section 6.1).
"""

import random

import pytest

from repro.query.engine import MongoQueryEngine, Query
from repro.query.normalize import query_hash
from repro.sim.workload import PaperWorkload, generate_document


@pytest.fixture(scope="module")
def workload():
    return PaperWorkload(total_queries=1000, matching_queries=100, seed=3)


@pytest.fixture(scope="module")
def parsed_queries(workload):
    return [Query(filter_doc) for filter_doc in workload.queries()]


def test_match_one_write_against_1000_queries(benchmark, parsed_queries):
    """The inner loop of a matching node: one after-image vs its whole
    query partition."""
    rng = random.Random(5)
    document = generate_document(rng, "probe", 42)

    def match_all():
        return sum(1 for query in parsed_queries if query.matches(document))

    hits = benchmark(match_all)
    assert hits == 1  # the workload guarantees exactly one match


def test_single_predicate_match(benchmark):
    query = Query({"random": {"$gte": 10, "$lt": 20}})
    document = generate_document(random.Random(5), "probe", 15)
    assert benchmark(query.matches, document)


def test_complex_predicate_match(benchmark):
    query = Query({
        "$or": [
            {"random": {"$gte": 10, "$lt": 20}},
            {"s0": {"$regex": "^a"}},
            {"i1": {"$in": [1, 2, 3]}},
        ],
        "i0": {"$exists": True},
    })
    document = generate_document(random.Random(5), "probe", 15)
    benchmark(query.matches, document)


def test_query_parse_cost(benchmark, workload):
    filters = workload.queries()[:100]

    def parse_all():
        return [Query(filter_doc) for filter_doc in filters]

    parsed = benchmark(parse_all)
    assert len(parsed) == 100


def test_canonical_hash_cost(benchmark):
    filter_doc = {"random": {"$gte": 10, "$lt": 20}}
    value = benchmark(query_hash, filter_doc)
    assert value == query_hash(filter_doc)


def test_sort_1000_documents(benchmark):
    engine = MongoQueryEngine()
    query = engine.parse({}, sort=[("random", -1)])
    rng = random.Random(9)
    documents = [generate_document(rng, i, rng.randrange(10**6))
                 for i in range(1000)]
    ordered = benchmark(engine.sort, query, documents)
    assert len(ordered) == 1000
