"""Shared helpers for the benchmark harness.

Every figure/table benchmark prints the paper-style rows AND persists
them under ``benchmarks/results/`` so the output survives pytest's
capture (run with ``-s`` to also see it live).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def emit(request):
    """Print a report block and persist it per-benchmark."""
    RESULTS_DIR.mkdir(exist_ok=True)
    target = RESULTS_DIR / f"{request.node.name}.txt"
    lines = []

    def _emit(text: str = "") -> None:
        print(text)
        lines.append(text)

    yield _emit
    target.write_text("\n".join(lines) + "\n")
