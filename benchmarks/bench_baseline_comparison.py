"""Quantifying Section 3.1: the cost structure of the three mechanisms.

The paper argues poll-and-diff burns database queries per active
subscription and log tailing forces every server through the entire
write stream, while InvaliDB partitions both dimensions.  This bench
runs the identical workload (real code, no simulation) through all
three and reports their characteristic costs.
"""

import pytest

from repro.baselines.log_tailing import LogTailingProvider
from repro.baselines.poll_and_diff import PollAndDiffProvider
from repro.core.filtering import FilteringNode
from repro.core.partitioning import NodeCoordinates, PartitioningScheme
from repro.query.engine import Query
from repro.query.normalize import query_hash
from repro.store.collection import Collection
from repro.types import AfterImage, WriteKind

QUERIES = 100
WRITES = 1000
GRID = (4, 4)  # 4 QP x 4 WP


def build_store():
    collection = Collection("events")
    for index in range(50):
        collection.insert({"_id": f"seed-{index}", "v": index})
    return collection


def write_stream(collection, count):
    for index in range(count):
        collection.insert({"_id": f"w-{index}", "v": index % 200})


def query_filters():
    return [{"v": {"$gte": bound * 2, "$lt": bound * 2 + 2}}
            for bound in range(QUERIES)]


def run_poll_and_diff():
    collection = build_store()
    provider = PollAndDiffProvider(collection)
    for filter_doc in query_filters():
        provider.subscribe(filter_doc)
    write_stream(collection, WRITES)
    provider.poll_all()  # one poll tick after the burst
    return provider.queries_executed


def run_log_tailing():
    collection = build_store()
    provider = LogTailingProvider(collection)
    for filter_doc in query_filters():
        provider.subscribe(filter_doc)
    write_stream(collection, WRITES)
    processed = provider.entries_processed
    provider.close()
    return processed


def run_invalidb_grid():
    """Drive the filtering stage directly: the 2D grid splits both the
    query set and the write stream across 16 nodes."""
    collection = build_store()
    scheme = PartitioningScheme(*GRID)
    nodes = {
        (coordinates.query_partition, coordinates.write_partition):
            FilteringNode(coordinates)
        for coordinates in scheme.all_nodes()
    }
    for filter_doc in query_filters():
        query = Query(filter_doc, collection="events")
        qp = scheme.query_partition_of(query.hash)
        for wp in range(scheme.write_partitions):
            nodes[(qp, wp)].register_query(query, [], {}, now=0.0)
    unsubscribe = None

    def on_write(after: AfterImage) -> None:
        wp = scheme.write_partition_of(after.key)
        for qp in range(scheme.query_partitions):
            nodes[(qp, wp)].process_write(after, now=after.timestamp)

    unsubscribe = collection.on_write(on_write)
    write_stream(collection, WRITES)
    unsubscribe()
    per_node = [node.matched_operations for node in nodes.values()]
    return max(per_node), sum(per_node)


def test_poll_and_diff_cost(benchmark, emit):
    executed = benchmark.pedantic(run_poll_and_diff, rounds=1, iterations=1)
    emit(f"poll-and-diff: {executed} pull queries for {QUERIES} "
         f"subscriptions over one burst + one poll tick")
    # Initial execution + one re-execution per query per poll.
    assert executed == 2 * QUERIES


def test_log_tailing_cost(benchmark, emit):
    processed = benchmark.pedantic(run_log_tailing, rounds=1, iterations=1)
    emit(f"log tailing: {processed} oplog entries processed by ONE server "
         f"for a {WRITES}-write burst")
    assert processed == WRITES


def test_invalidb_grid_cost(benchmark, emit):
    worst, total = benchmark.pedantic(run_invalidb_grid, rounds=1,
                                      iterations=1)
    emit(f"InvaliDB {GRID[0]}x{GRID[1]} grid: worst node performed {worst} "
         f"match operations (total {total}) for the same burst")
    # Each write reaches query_partitions nodes; each such node matches
    # it against ~QUERIES/QP queries -> worst node does about
    # WRITES/WP * QUERIES/QP matches, a 16th of the naive cost.
    naive = WRITES * QUERIES
    assert worst < naive / (GRID[0] * GRID[1]) * 1.6
    emit(f"naive single-node cost would be {naive} match operations "
         f"({naive / worst:.1f}x the worst grid node)")
