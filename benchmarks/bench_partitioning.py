"""Partitioning micro-benchmarks and balance report.

Measures the stable-hash routing cost (paid once per write at an
ingestion node) and reports grid balance for the paper's workload —
the "as even as possible" claim of Section 5.1.
"""

import pytest

from repro.core.partitioning import PartitioningScheme, stable_hash
from repro.query.normalize import query_hash
from repro.sim.workload import PaperWorkload


def test_stable_hash_throughput(benchmark):
    keys = [f"document-{index}" for index in range(1000)]

    def hash_all():
        return [stable_hash(key) for key in keys]

    values = benchmark(hash_all)
    assert len(set(values)) == 1000


def test_write_routing_cost(benchmark):
    scheme = PartitioningScheme(4, 4)

    def route():
        return scheme.nodes_for_write("some-primary-key")

    nodes = benchmark(route)
    assert len(nodes) == 4


def test_query_routing_cost(benchmark):
    scheme = PartitioningScheme(4, 4)
    q_hash = query_hash({"random": {"$gte": 10, "$lt": 20}})

    def route():
        return scheme.nodes_for_query(q_hash)

    nodes = benchmark(route)
    assert len(nodes) == 4


def test_grid_balance_report(benchmark, emit):
    """Distribute the paper's workload over a 4x4 grid and report the
    per-node query/write balance."""
    scheme = PartitioningScheme(4, 4)
    workload = PaperWorkload(total_queries=2000, matching_queries=500)

    def distribute():
        query_load = [0] * scheme.query_partitions
        for filter_doc in workload.queries():
            query_load[scheme.query_partition_of(query_hash(filter_doc))] += 1
        write_load = [0] * scheme.write_partitions
        for document in workload.write_stream(4000):
            write_load[scheme.write_partition_of(document["_id"])] += 1
        return query_load, write_load

    query_load, write_load = benchmark.pedantic(distribute, rounds=1,
                                                iterations=1)
    emit("Grid balance on the paper workload (4 QP x 4 WP)")
    emit("=" * 52)
    emit(f"queries per query partition: {query_load}")
    emit(f"writes  per write partition: {write_load}")
    spread_q = max(query_load) / (sum(query_load) / len(query_load))
    spread_w = max(write_load) / (sum(write_load) / len(write_load))
    emit(f"max/mean spread: queries {spread_q:.2f}, writes {spread_w:.2f}")
    assert spread_q < 1.25 and spread_w < 1.25
