"""The paper's evaluation workload on the functional (threaded) stack.

Section 6.1's construction — documents with five 10-char strings and
five ints, range queries on the unique ``random`` field, exactly one
match per matching query — executed for real: queries subscribed
through the app server, writes through the database, notifications
through the event layer.  Validates that the matching semantics the
simulation assumes hold in the running system, and measures its
throughput on this exact workload.
"""

import threading
import time

import pytest

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.event.broker import Broker
from repro.sim.workload import PaperWorkload

QUERIES = 200
MATCHING = 50
NOISE_WRITES = 150


@pytest.fixture
def stack():
    broker = Broker()
    config = InvaliDBConfig(query_partitions=2, write_partitions=2)
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("paper-app", broker, config=config)
    yield broker, cluster, app
    app.close()
    cluster.stop()
    broker.close()


def test_paper_workload_functional(benchmark, stack, emit):
    broker, cluster, app = stack
    workload = PaperWorkload(total_queries=QUERIES,
                             matching_queries=MATCHING, seed=11)
    received = []
    lock = threading.Lock()

    def on_change(notification):
        with lock:
            received.append(notification)

    for filter_doc in workload.queries():
        app.subscribe("test", filter_doc, on_change=on_change)
    stream = workload.write_stream(MATCHING + NOISE_WRITES)

    def run_stream():
        with lock:
            received.clear()
        for document in stream:
            app.save("test", document)
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            with lock:
                if len(received) >= MATCHING:
                    return len(received)
            time.sleep(0.01)
        raise AssertionError(f"only {len(received)}/{MATCHING} matches")

    delivered = benchmark.pedantic(run_stream, rounds=3, iterations=1)
    emit(f"paper workload: {QUERIES} active queries, "
         f"{MATCHING + NOISE_WRITES} writes per round")
    emit(f"notifications delivered: {delivered} "
         f"(expected {MATCHING}: one per matching query)")
    # The workload guarantee: exactly one notification per matching
    # write, nothing for noise writes (save() re-runs make them CHANGEs
    # against the same single query, still 1:1 per write round).
    assert delivered == MATCHING
    with lock:
        matched_queries = {n.query_id for n in received}
    assert len(matched_queries) == MATCHING
