"""Sorted-window maintenance benchmarks (Section 5.2).

Two axes:

* **Slack ablation** — the slack is InvaliDB's robustness budget for
  sorted queries: every removal spends one unit, a renewal refills it
  at the cost of one pull-based query against the database.  A sorted
  top-10 query is subjected to delete-heavy churn under different slack
  values, reporting how many renewals (database round-trips) each needs
  — the trade-off behind the paper's poll frequency rate limit and
  footnote 5's adaptive slack.

* **Window-size scaling** — per-event maintenance cost as the
  maintained window W grows from 10 to 10k, incremental O(log W) path
  vs the legacy snapshot-diff path (O(W) scan + two O(W) snapshots +
  an O(W) dict-rebuilding diff per event).  The workload is in-window
  score churn (every event relocates an existing member), the
  adversarial case for window maintenance.  The CI gate asserts the
  incremental path's speedup floor at W = 5k.
"""

import random
import time

import pytest

from repro.core.filtering import MatchEvent
from repro.core.sorting import SortingNode
from repro.query.engine import Query
from repro.types import MatchType

DELETES = 400
POPULATION = 1000

WINDOW_SIZES = [10, 100, 1_000, 5_000, 10_000]


def run_workload(slack: int, delete_bias: float = 0.7, seed: int = 11):
    """Random add/delete churn against a sorted top-10 query."""
    rng = random.Random(seed)
    query = Query({}, sort=[("score", -1)], limit=10)
    node = SortingNode()
    documents = {
        index: {"_id": index, "score": rng.randrange(10**6)}
        for index in range(POPULATION)
    }
    version = {index: 1 for index in documents}
    next_key = POPULATION

    def bootstrap():
        rewritten = query.rewritten_for_subscription(slack)
        ordered = sorted(documents.values(),
                         key=query.sort.key)[: rewritten.limit]
        node.register_query(query, ordered,
                            {d["_id"]: version[d["_id"]] for d in ordered},
                            slack=slack)

    bootstrap()
    renewals = 0
    notifications = 0
    operations = 0
    while operations < DELETES:
        if rng.random() < delete_bias and documents:
            # Deletes target the top of the ranking (a hot leaderboard):
            # that is the adversarial case for window maintenance.
            ranked = sorted(documents.values(),
                            key=lambda doc: -doc["score"])[:25]
            key = rng.choice(ranked)["_id"]
            del documents[key]
            version[key] += 1
            event = MatchEvent(query.query_id, MatchType.REMOVE, key, None,
                               version[key], 0.0, True)
            operations += 1
        else:
            key = next_key
            next_key += 1
            documents[key] = {"_id": key, "score": rng.randrange(10**6)}
            version[key] = 1
            event = MatchEvent(query.query_id, MatchType.ADD, key,
                               documents[key], 1, 0.0, True)
        changes = node.handle_event(event)
        notifications += len(changes)
        if any(change.is_error for change in changes):
            renewals += 1
            bootstrap()
    return renewals, notifications


@pytest.mark.parametrize("slack", [1, 2, 5, 10, 20, 50])
def test_slack_ablation(benchmark, emit, slack):
    renewals, notifications = benchmark.pedantic(
        run_workload, args=(slack,), rounds=1, iterations=1
    )
    emit(f"slack={slack:>3}: {renewals:>4} renewals "
         f"(database re-executions), {notifications:>5} notifications "
         f"over {DELETES} deletes")
    # Sanity: a large slack needs an order of magnitude fewer renewals
    # than slack=1 does on this adversarial top-of-ranking churn.
    if slack >= 50:
        assert renewals <= DELETES // 40


def test_larger_slack_reduces_renewals(benchmark, emit):
    """The headline ablation result: renewal count decreases
    monotonically (modulo noise) as slack grows."""

    def sweep():
        return {slack: run_workload(slack)[0] for slack in (1, 5, 20, 50)}

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(f"renewals by slack: {counts}")
    assert counts[1] > counts[5] > counts[50]
    assert counts[20] >= counts[50]


# ----------------------------------------------------------------------
# Window-size scaling: incremental vs legacy maintenance
# ----------------------------------------------------------------------

def _window_query(window: int) -> Query:
    return Query({}, sort=[("score", 1)], limit=window)


def _bootstrapped_node(window: int, incremental: bool) -> SortingNode:
    """A node maintaining one full window of W members (complete
    knowledge, generous slack: the churn below never renews)."""
    query = _window_query(window)
    node = SortingNode(incremental=incremental)
    documents = [
        {"_id": key, "score": float(key)} for key in range(window)
    ]
    node.register_query(query, documents,
                        {doc["_id"]: 1 for doc in documents},
                        slack=50)
    return node


def _churn_events(window: int, events: int, seed: int = 7):
    """In-window score churn: each event moves an existing member to a
    random new rank (the all-CHANGE_INDEX worst case).  Versions
    strictly increase per key so no event is dropped as stale."""
    rng = random.Random(seed)
    query_id = _window_query(window).query_id
    versions = {}
    batch = []
    for _ in range(events):
        key = rng.randrange(window)
        versions[key] = versions.get(key, 1) + 1
        document = {"_id": key, "score": rng.random() * window}
        batch.append(MatchEvent(query_id, MatchType.CHANGE, key, document,
                                versions[key], 0.0, True))
    return batch


def _measure_per_event_seconds(window: int, incremental: bool,
                               events: int, repeats: int = 3) -> float:
    """Best-of-N wall time per event through a loaded sorting node."""
    best = float("inf")
    for _ in range(repeats):
        node = _bootstrapped_node(window, incremental)
        batch = _churn_events(window, events)
        emitted = 0
        started = time.perf_counter()
        for event in batch:
            emitted += len(node.handle_event(event))
        elapsed = time.perf_counter() - started
        assert node.renewals_requested == 0 and emitted >= events // 2
        best = min(best, elapsed)
    return best / events


def test_window_scaling_report(emit):
    """The committed scaling table: events/s by window size, incremental
    vs legacy, on all-move churn."""
    emit("Sorted-window maintenance scaling (per-event cost, in-window "
         "score churn)")
    emit("legacy: O(W) scan + two O(W) snapshots + O(W) diff per event;")
    emit("incremental: O(log W) bisect + positional diff")
    emit()
    emit(f"{'window':>7} | {'legacy ev/s':>12} | {'increm ev/s':>12} "
         f"| {'speedup':>8}")
    emit("-" * 50)
    for window in WINDOW_SIZES:
        events = 100 if window >= 5_000 else 400
        legacy = _measure_per_event_seconds(window, False, events)
        incremental = _measure_per_event_seconds(window, True, events)
        emit(f"{window:>7} | {1 / legacy:>12,.0f} | "
             f"{1 / incremental:>12,.0f} | "
             f"{legacy / incremental:>7.1f}x")
    emit()
    emit("incremental per-event cost is near-constant in W; the legacy")
    emit("path degrades linearly (snapshot + diff dominate)")


def test_incremental_vs_legacy_speedup_gate():
    """CI smoke gate: the incremental path must beat the legacy
    snapshot-diff path by >= 5x at a 5k-entry window (the acceptance
    floor; typical is two orders of magnitude).

    Runs without the pytest-benchmark fixture so it still measures
    under ``--benchmark-disable``.
    """
    legacy = _measure_per_event_seconds(5_000, False, events=100)
    incremental = _measure_per_event_seconds(5_000, True, events=100)
    speedup = legacy / incremental
    assert speedup >= 5.0, (
        f"incremental sorting only {speedup:.1f}x faster than legacy"
    )


def test_incremental_and_legacy_emit_identical_streams():
    """Smoke-level equivalence inside the bench workload itself: the
    measured paths do the same work, so the comparison is honest."""
    window, events = 500, 200
    streams = []
    for incremental in (True, False):
        node = _bootstrapped_node(window, incremental)
        stream = []
        for event in _churn_events(window, events):
            stream.append(node.handle_event(event))
        streams.append(stream)
    assert streams[0] == streams[1]
