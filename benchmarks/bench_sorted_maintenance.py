"""Ablation: slack size vs query renewal frequency (Section 5.2).

The slack is InvaliDB's robustness budget for sorted queries: every
removal spends one unit, a renewal refills it at the cost of one
pull-based query against the database.  This bench subjects a sorted
top-10 query to a delete-heavy workload under different slack values
and reports how many renewals (database round-trips) each needs —
quantifying the trade-off behind the paper's poll frequency rate limit
and footnote 5's adaptive slack.
"""

import random

import pytest

from repro.core.filtering import MatchEvent
from repro.core.sorting import SortingNode
from repro.query.engine import Query
from repro.types import MatchType

DELETES = 400
POPULATION = 1000


def run_workload(slack: int, delete_bias: float = 0.7, seed: int = 11):
    """Random add/delete churn against a sorted top-10 query."""
    rng = random.Random(seed)
    query = Query({}, sort=[("score", -1)], limit=10)
    node = SortingNode()
    documents = {
        index: {"_id": index, "score": rng.randrange(10**6)}
        for index in range(POPULATION)
    }
    version = {index: 1 for index in documents}
    next_key = POPULATION

    def bootstrap():
        rewritten = query.rewritten_for_subscription(slack)
        ordered = sorted(documents.values(),
                         key=query.sort.key)[: rewritten.limit]
        node.register_query(query, ordered,
                            {d["_id"]: version[d["_id"]] for d in ordered},
                            slack=slack)

    bootstrap()
    renewals = 0
    notifications = 0
    operations = 0
    while operations < DELETES:
        if rng.random() < delete_bias and documents:
            # Deletes target the top of the ranking (a hot leaderboard):
            # that is the adversarial case for window maintenance.
            ranked = sorted(documents.values(),
                            key=lambda doc: -doc["score"])[:25]
            key = rng.choice(ranked)["_id"]
            del documents[key]
            version[key] += 1
            event = MatchEvent(query.query_id, MatchType.REMOVE, key, None,
                               version[key], 0.0, True)
            operations += 1
        else:
            key = next_key
            next_key += 1
            documents[key] = {"_id": key, "score": rng.randrange(10**6)}
            version[key] = 1
            event = MatchEvent(query.query_id, MatchType.ADD, key,
                               documents[key], 1, 0.0, True)
        changes = node.handle_event(event)
        notifications += len(changes)
        if any(change.is_error for change in changes):
            renewals += 1
            bootstrap()
    return renewals, notifications


@pytest.mark.parametrize("slack", [1, 2, 5, 10, 20, 50])
def test_slack_ablation(benchmark, emit, slack):
    renewals, notifications = benchmark.pedantic(
        run_workload, args=(slack,), rounds=1, iterations=1
    )
    emit(f"slack={slack:>3}: {renewals:>4} renewals "
         f"(database re-executions), {notifications:>5} notifications "
         f"over {DELETES} deletes")
    # Sanity: a large slack needs an order of magnitude fewer renewals
    # than slack=1 does on this adversarial top-of-ranking churn.
    if slack >= 50:
        assert renewals <= DELETES // 40


def test_larger_slack_reduces_renewals(benchmark, emit):
    """The headline ablation result: renewal count decreases
    monotonically (modulo noise) as slack grows."""

    def sweep():
        return {slack: run_workload(slack)[0] for slack in (1, 5, 20, 50)}

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(f"renewals by slack: {counts}")
    assert counts[1] > counts[5] > counts[50]
    assert counts[20] >= counts[50]
