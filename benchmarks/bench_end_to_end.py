"""End-to-end latency of the functional InvaliDB stack.

Complements the simulated figures with real measurements of this
repository's running system: wall-clock time from executing a write at
the app server until the subscribed client receives the change
notification, through broker -> ingestion -> matching grid -> broker.

The ``stack`` fixture is parametrized over the execution substrate —
batched threaded, seed-equivalent unbatched threaded, and the
deterministic inline model — so every figure carries the
executor-comparison axis.
"""

import threading
import time

import pytest

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.event.broker import Broker
from repro.obs.telemetry import TelemetryConfig
from repro.runtime.execution import ExecutionConfig

EXECUTORS = {
    "threaded-batched": lambda: ExecutionConfig(max_batch=128),
    "threaded-unbatched": lambda: ExecutionConfig(max_batch=1),
    "inline": lambda: ExecutionConfig(mode="inline"),
    # Grid cells in forked workers behind the binary wire codec; the
    # figure then carries the cross-process round-trip cost.
    "process": lambda: ExecutionConfig(mode="process", worker_processes=2),
}


def build_stack(executor: str, telemetry=None):
    broker = Broker(execution=EXECUTORS[executor]())
    config = InvaliDBConfig(query_partitions=2, write_partitions=2,
                            telemetry=telemetry)
    # The cluster shares the broker's model: one substrate, end to end.
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("bench-app", broker, config=config)
    return broker, cluster, app


@pytest.fixture(params=sorted(EXECUTORS))
def stack(request):
    broker, cluster, app = build_stack(request.param)
    yield broker, cluster, app
    app.close()
    cluster.stop()
    broker.close()


@pytest.fixture(params=sorted(EXECUTORS))
def traced_stack(request):
    """Same stack with telemetry enabled and *every* write traced
    (sample rate 1.0 — this fixture measures the latency distribution,
    so it wants all the points, not the production sampling default)."""
    broker, cluster, app = build_stack(
        request.param, telemetry=TelemetryConfig(trace_sample_rate=1.0))
    yield request.param, broker, cluster, app
    app.close()
    cluster.stop()
    broker.close()


def test_notification_roundtrip_latency(benchmark, stack, emit):
    """One write -> one notification, measured end to end."""
    broker, cluster, app = stack
    arrival = threading.Event()

    def on_change(notification):
        arrival.set()

    app.subscribe("items", {"v": {"$gte": 0}}, on_change=on_change)
    counter = {"n": 0}

    def roundtrip():
        arrival.clear()
        counter["n"] += 1
        app.insert("items", {"_id": counter["n"], "v": counter["n"]})
        assert arrival.wait(timeout=5.0)

    benchmark.pedantic(roundtrip, rounds=30, iterations=1, warmup_rounds=3)
    emit("end-to-end write->notification roundtrips completed: "
         f"{counter['n']}")


def test_burst_throughput_with_100_queries(benchmark, stack, emit):
    """A 200-write burst against 100 live queries, to quiescence."""
    broker, cluster, app = stack
    received = []
    lock = threading.Lock()

    def on_change(notification):
        with lock:
            received.append(notification)

    for bound in range(100):
        app.subscribe("stream", {"v": {"$gte": bound * 10_000_000}},
                      on_change=on_change)
    # Only the bound-0 query can match (v is small): 1 notification/write.
    state = {"base": 0}

    def burst():
        base = state["base"]
        state["base"] += 200
        for index in range(200):
            app.insert("stream", {"_id": base + index, "v": 1 + index % 5})
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            with lock:
                if len(received) >= state["base"]:
                    return
            time.sleep(0.005)
        raise AssertionError("burst did not drain in time")

    benchmark.pedantic(burst, rounds=3, iterations=1)
    with lock:
        total = len(received)
    emit(f"notifications delivered across bursts: {total}")
    assert total == state["base"]


def test_notification_latency_distribution(benchmark, traced_stack, emit):
    """Latency distribution of 300 sequential write->notify roundtrips
    on the real stack, sourced from the telemetry registry: every
    delivered notification carries a write-path trace whose end-to-end
    duration lands in the ``trace.e2e_seconds`` histogram — no manual
    stopwatching.  Under the inline model spans carry *virtual* time,
    so the distribution legitimately reports ~0 ms (no sleeps anywhere
    on the deterministic path)."""
    executor, broker, cluster, app = traced_stack
    arrival = threading.Event()
    app.subscribe("timed", {"v": {"$gte": 0}},
                  on_change=lambda n: arrival.set())

    def run_all():
        for index in range(300):
            arrival.clear()
            app.insert("timed", {"_id": index, "v": index})
            assert arrival.wait(timeout=5.0)

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert broker.drain()
    snap = cluster.telemetry.registry.histogram(
        "trace.e2e_seconds"
    ).snapshot()
    emit("Functional stack write->notification latency (ms), from the")
    emit("trace.e2e_seconds telemetry histogram:")
    emit(f"  n={snap['count']}  avg={snap['average'] * 1000:.2f}  "
         f"p50={snap['p50'] * 1000:.2f}  p99={snap['p99'] * 1000:.2f}  "
         f"max={snap['max'] * 1000:.2f}")
    assert snap["count"] >= 300
    if executor != "inline":  # inline spans use virtual (~0) time
        assert snap["p50"] * 1000 < 250.0  # generous: CI machines vary
