"""Telemetry overhead: the enabled/disabled cost of observability.

The ISSUE's acceptance bar: with telemetry (metrics + write-path
tracing) enabled, end-to-end burst throughput must stay within 10 % of
the disabled baseline.  The benchmark pushes the same write burst
through identical inline stacks — deterministic, so the two runs do
exactly the same matching work and differ only by instrumentation —
and asserts on the median of per-round *bracketed* ratios (each
enabled sample divided by the mean of the disabled runs surrounding
it in time), which cancels thermal / frequency / co-tenant drift to
first order.  A batch that still exceeds the bound triggers exactly
one full re-measure: shared-CPU load shifts move whole batches by
several percent, and a transient spike should not fail the build
while a real regression fails both batches.

"Enabled" means ``telemetry=True``: the default production
configuration — all metrics (counters, gauges, sampled queue/stage
histograms), SLO accounting, plus head-sampled write-path tracing
(1 write in 16 carries a trace; see
``TelemetryConfig.trace_sample_rate``).  Full
per-write tracing pays two extra JSON hops per notification and is a
measurement configuration, not the default; its cost is reported
separately below rather than asserted against the bound.
"""

import gc
import os
import socket
import statistics
import time

import pytest

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.event.broker import Broker
from repro.obs.telemetry import TelemetryConfig
from repro.runtime.execution import ExecutionConfig

WRITES = 400
ROUNDS = 7

#: Process-model axis: each round forks, calibrates and tears down
#: worker pools, so it uses fewer writes/rounds to keep the wall-clock
#: budget sane — IPC noise is absorbed by the bracketed-round median,
#: same as the inline axis.
WRITES_PROCESS = 400
ROUNDS_PROCESS = 6


def run_burst(telemetry) -> float:
    """One full stack lifecycle + burst; returns wall-clock seconds."""
    gc.collect()  # every arm starts from the same heap state
    broker = Broker(execution=ExecutionConfig(mode="inline", seed=11))
    config = InvaliDBConfig(query_partitions=2, write_partitions=2,
                            telemetry=telemetry)
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("overhead-app", broker, config=config)
    try:
        received = []
        app.subscribe("burst", {"v": {"$gte": 0}},
                      on_change=received.append)
        app.subscribe("burst", {}, sort=[("v", -1)], limit=10,
                      on_change=received.append)
        assert broker.drain()
        start = time.perf_counter()
        # Streamed, not batch-and-settle: drain every 25 writes so
        # notifications flow with realistic millisecond lag.  A single
        # drain after all inserts would hold every notification until
        # the end, manufacturing artificial 100ms+ end-to-end traces
        # (slow-trace handling) that no steady-state deployment pays.
        for index in range(WRITES):
            app.insert("burst", {"_id": index, "v": index % 50})
            if index % 25 == 24:
                broker.drain()
        assert broker.drain()
        elapsed = time.perf_counter() - start
        assert len(received) >= WRITES  # both queries saw the burst
        return elapsed
    finally:
        app.close()
        cluster.stop()
        broker.close()


def test_telemetry_overhead_within_bound(benchmark, emit):
    """Median per-round bracketed enabled/disabled ratio.

    Each round brackets the enabled arms between two disabled runs
    (off, on, full, off) and divides each enabled sample by the mean
    of its disabled neighbors — linear machine drift (thermal,
    scheduler, shared-CPU contention) within the round cancels to
    first order, where comparing independent arm medians would soak
    it all into the ratio.  The median over rounds then drops
    contention spikes that hit a single round.
    """
    rounds = []
    full_tracing = TelemetryConfig(trace_sample_rate=1.0)

    def measure():
        for _ in range(ROUNDS):
            rounds.append((
                run_burst(telemetry=None),
                run_burst(telemetry=True),
                run_burst(telemetry=full_tracing),
                run_burst(telemetry=None),
            ))

    benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=1)
    ratio = statistics.median(2 * s[1] / (s[0] + s[3]) for s in rounds)
    if ratio > 1.10:
        # Shared-CPU machines shift load on minute scales, moving a
        # whole measurement batch by several percent.  A transient
        # spike should not fail the build, a real regression must: one
        # full re-measure, both attempts reported, the second decides.
        emit(f"first batch ratio {ratio:.3f} > bound; re-measuring "
             f"once to rule out transient machine load")
        rounds.clear()
        measure()
        ratio = statistics.median(2 * s[1] / (s[0] + s[3]) for s in rounds)
    off = statistics.median((s[0] + s[3]) / 2 for s in rounds)
    on = statistics.median(s[1] for s in rounds)
    full = statistics.median(s[2] for s in rounds)
    full_ratio = statistics.median(2 * s[2] / (s[0] + s[3]) for s in rounds)
    emit(f"Telemetry overhead, {WRITES}-write inline burst, "
         f"median bracketed ratio over {ROUNDS} rounds:")
    emit(f"  disabled:            {off * 1000:8.2f} ms  "
         f"({WRITES / off:9.0f} writes/s)")
    emit(f"  enabled (default):   {on * 1000:8.2f} ms  "
         f"({WRITES / on:9.0f} writes/s)  ratio {ratio:.3f}")
    emit(f"  enabled (trace all): {full * 1000:8.2f} ms  "
         f"({WRITES / full:9.0f} writes/s)  ratio {full_ratio:.3f}"
         f"  [informational]")
    emit(f"  bound: default-enabled ratio <= 1.10 "
         f"(throughput within 10%)")
    assert ratio <= 1.10, (
        f"telemetry overhead {100 * (ratio - 1):.1f}% exceeds the 10% bound"
    )


def run_process_burst(telemetry) -> float:
    """One process-model stack lifecycle + burst; wall-clock seconds.

    Matching/sorting cells live in forked workers, so the enabled arm
    additionally exercises clock calibration, worker-side span
    stamping, and trace piggybacking on the wire frames.
    """
    gc.collect()
    broker = Broker()
    config = InvaliDBConfig(
        query_partitions=2, write_partitions=2,
        execution_model="process", process_workers=2,
        telemetry=telemetry,
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("overhead-proc", broker, config=config)
    try:
        received = []
        app.subscribe("burst", {"v": {"$gte": 0}},
                      on_change=received.append)
        app.subscribe("burst", {}, sort=[("v", -1)], limit=10,
                      on_change=received.append)
        broker.drain(10.0)
        cluster.drain(10.0)
        start = time.perf_counter()
        # Unlike the inline axis there is no mid-burst drain here:
        # workers consume their sockets concurrently with the insert
        # loop, and a parent-side drain would act as a per-chunk
        # round-trip barrier — serializing what the process model
        # exists to pipeline — so the burst is timed to last delivery.
        for index in range(WRITES_PROCESS):
            app.insert("burst", {"_id": index, "v": index % 50})
        deadline = start + 60.0
        while (len(received) < WRITES_PROCESS
               and time.perf_counter() < deadline):
            broker.drain(5.0)
            cluster.drain(5.0)
        elapsed = time.perf_counter() - start
        assert len(received) >= WRITES_PROCESS
        return elapsed
    finally:
        app.close()
        cluster.stop()
        broker.close()


@pytest.mark.skipif(
    not (hasattr(os, "fork") and hasattr(socket, "AF_UNIX")),
    reason="process model needs fork + AF_UNIX socketpairs",
)
def test_telemetry_overhead_process_model(benchmark, emit):
    """Process-model axis of the same bound: worker-side spans ride
    existing wire frames (no extra round-trips), so default telemetry
    — sampling on — must stay within 10% of the disabled baseline.
    Same bracketed estimator as the inline axis, with the enabled arm
    doubled (off, on, on, off) since IPC scheduling noise per run is
    much larger than inline."""
    rounds = []

    def measure():
        for _ in range(ROUNDS_PROCESS):
            rounds.append((
                run_process_burst(telemetry=None),
                run_process_burst(telemetry=True),
                run_process_burst(telemetry=True),
                run_process_burst(telemetry=None),
            ))

    benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=1)
    ratio = statistics.median(
        (s[1] + s[2]) / (s[0] + s[3]) for s in rounds
    )
    if ratio > 1.10:
        # Same transient-load guard as the inline axis (see above).
        emit(f"first batch ratio {ratio:.3f} > bound; re-measuring "
             f"once to rule out transient machine load")
        rounds.clear()
        measure()
        ratio = statistics.median(
            (s[1] + s[2]) / (s[0] + s[3]) for s in rounds
        )
    off = statistics.median((s[0] + s[3]) / 2 for s in rounds)
    on = statistics.median((s[1] + s[2]) / 2 for s in rounds)
    emit(f"Telemetry overhead, {WRITES_PROCESS}-write process-model "
         f"burst, median bracketed ratio over {ROUNDS_PROCESS} "
         f"rounds:")
    emit(f"  disabled:            {off * 1000:8.2f} ms  "
         f"({WRITES_PROCESS / off:9.0f} writes/s)")
    emit(f"  enabled (default):   {on * 1000:8.2f} ms  "
         f"({WRITES_PROCESS / on:9.0f} writes/s)  ratio {ratio:.3f}")
    emit(f"  bound: default-enabled ratio <= 1.10 "
         f"(throughput within 10%)")
    assert ratio <= 1.10, (
        f"process-model telemetry overhead {100 * (ratio - 1):.1f}% "
        f"exceeds the 10% bound"
    )
