"""Telemetry overhead: the enabled/disabled cost of observability.

The ISSUE's acceptance bar: with telemetry (metrics + write-path
tracing) enabled, end-to-end burst throughput must stay within 10 % of
the disabled baseline.  The benchmark pushes the same write burst
through identical inline stacks — deterministic, so the two runs do
exactly the same matching work and differ only by instrumentation —
and compares the median wall-clock of several alternating rounds
(alternation cancels thermal / frequency drift).

"Enabled" means ``telemetry=True``: the default production
configuration — all metrics (counters, gauges, sampled queue/stage
histograms) plus head-sampled write-path tracing (1 write in 4
carries a trace; see ``TelemetryConfig.trace_sample_rate``).  Full
per-write tracing pays two extra JSON hops per notification and is a
measurement configuration, not the default; its cost is reported
separately below rather than asserted against the bound.
"""

import statistics
import time

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.event.broker import Broker
from repro.obs.telemetry import TelemetryConfig
from repro.runtime.execution import ExecutionConfig

WRITES = 400
ROUNDS = 7


def run_burst(telemetry) -> float:
    """One full stack lifecycle + burst; returns wall-clock seconds."""
    broker = Broker(execution=ExecutionConfig(mode="inline", seed=11))
    config = InvaliDBConfig(query_partitions=2, write_partitions=2,
                            telemetry=telemetry)
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("overhead-app", broker, config=config)
    try:
        received = []
        app.subscribe("burst", {"v": {"$gte": 0}},
                      on_change=received.append)
        app.subscribe("burst", {}, sort=[("v", -1)], limit=10,
                      on_change=received.append)
        assert broker.drain()
        start = time.perf_counter()
        for index in range(WRITES):
            app.insert("burst", {"_id": index, "v": index % 50})
        assert broker.drain()
        elapsed = time.perf_counter() - start
        assert len(received) >= WRITES  # both queries saw the burst
        return elapsed
    finally:
        app.close()
        cluster.stop()
        broker.close()


def test_telemetry_overhead_within_bound(benchmark, emit):
    """Median enabled/disabled ratio of alternating burst rounds."""
    off_samples, on_samples, full_samples = [], [], []
    full_tracing = TelemetryConfig(trace_sample_rate=1.0)

    def measure():
        # Alternate within every round so machine noise hits all arms.
        for _ in range(ROUNDS):
            off_samples.append(run_burst(telemetry=None))
            on_samples.append(run_burst(telemetry=True))
            full_samples.append(run_burst(telemetry=full_tracing))

    benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=1)
    off = statistics.median(off_samples)
    on = statistics.median(on_samples)
    full = statistics.median(full_samples)
    ratio = on / off
    emit(f"Telemetry overhead, {WRITES}-write inline burst, "
         f"median of {ROUNDS} alternating rounds:")
    emit(f"  disabled:            {off * 1000:8.2f} ms  "
         f"({WRITES / off:9.0f} writes/s)")
    emit(f"  enabled (default):   {on * 1000:8.2f} ms  "
         f"({WRITES / on:9.0f} writes/s)  ratio {ratio:.3f}")
    emit(f"  enabled (trace all): {full * 1000:8.2f} ms  "
         f"({WRITES / full:9.0f} writes/s)  ratio {full / off:.3f}"
         f"  [informational]")
    emit(f"  bound: default-enabled ratio <= 1.10 "
         f"(throughput within 10%)")
    assert ratio <= 1.10, (
        f"telemetry overhead {100 * (ratio - 1):.1f}% exceeds the 10% bound"
    )
