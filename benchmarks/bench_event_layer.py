"""Event-layer micro-benchmarks.

The paper verified that "the event layer (Redis) did not become a
bottleneck" (Section 6.1).  These benches measure our in-memory
broker's raw throughput — publish rate, end-to-end delivery rate, and
the JSON (de)serialization cost the paper blames for the read/write
asymmetry (Section 6.3).
"""

import threading

import pytest

from repro.event.broker import Broker
from repro.event.codec import JsonCodec
from repro.sim.workload import generate_document

import random


@pytest.fixture
def broker():
    broker = Broker()
    yield broker
    broker.close()


def test_publish_throughput(benchmark, broker):
    """Publish-side cost (encode + enqueue) for a typical after-image."""
    document = generate_document(random.Random(1), "key", 42)
    payload = {"kind": "write", "key": "key", "version": 1,
               "op": "update", "document": document}
    benchmark(broker.publish, "bench-channel", payload)


def test_delivery_roundtrip_batch(benchmark, broker):
    """Time 1 000 messages from publish to subscriber callback."""
    received = threading.Semaphore(0)
    broker.subscribe("batch", lambda c, p: received.release())
    document = generate_document(random.Random(1), "key", 42)

    def burst():
        for index in range(1000):
            broker.publish("batch", {"seq": index, "document": document})
        for _ in range(1000):
            assert received.acquire(timeout=5.0)

    benchmark.pedantic(burst, rounds=3, iterations=1)


def test_json_codec_roundtrip(benchmark):
    """The per-message (de)serialization cost of the wire format."""
    codec = JsonCodec()
    document = generate_document(random.Random(1), "key", 42)
    payload = {"kind": "write", "key": "key", "version": 3,
               "op": "update", "document": document, "timestamp": 1.5}

    def roundtrip():
        return codec.decode(codec.encode(payload))

    result = benchmark(roundtrip)
    assert result == payload


def test_fanout_to_many_subscribers(benchmark, broker):
    """One message fanned out to 100 subscribers (multi-tenant case)."""
    received = threading.Semaphore(0)
    for _ in range(100):
        broker.subscribe("fanout", lambda c, p: received.release())

    def publish_and_wait():
        broker.publish("fanout", {"v": 1})
        for _ in range(100):
            assert received.acquire(timeout=5.0)

    benchmark.pedantic(publish_and_wait, rounds=10, iterations=1)
