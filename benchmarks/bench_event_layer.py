"""Event-layer micro-benchmarks.

The paper verified that "the event layer (Redis) did not become a
bottleneck" (Section 6.1).  These benches measure our in-memory
broker's raw throughput — publish rate, end-to-end delivery rate, and
the JSON (de)serialization cost the paper blames for the read/write
asymmetry (Section 6.3) — plus an **executor-comparison axis**: the
same burst workload on the batched threaded model, a seed-equivalent
per-message dispatcher (``max_batch=1``), and the deterministic inline
model.
"""

import threading
import time

import pytest

from repro.event.broker import Broker
from repro.event.codec import JsonCodec, NoopCodec
from repro.runtime.execution import ExecutionConfig
from repro.sim.workload import generate_document

import random

#: The executor axis: batched threaded vs the seed's one-message-at-a-
#: time dispatcher vs deterministic inline vs the process model (whose
#: broker runs on the same threaded substrate — this axis shows the
#: event layer costs nothing extra when the grid moves out of process).
EXECUTORS = {
    "threaded-batched": lambda: ExecutionConfig(max_batch=128),
    "threaded-unbatched": lambda: ExecutionConfig(max_batch=1),
    "inline": lambda: ExecutionConfig(mode="inline"),
    "process": lambda: ExecutionConfig(mode="process", worker_processes=2),
}


@pytest.fixture
def broker():
    broker = Broker()
    yield broker
    broker.close()


def test_publish_throughput(benchmark, broker):
    """Publish-side cost (encode + enqueue) for a typical after-image."""
    document = generate_document(random.Random(1), "key", 42)
    payload = {"kind": "write", "key": "key", "version": 1,
               "op": "update", "document": document}
    benchmark(broker.publish, "bench-channel", payload)


def test_delivery_roundtrip_batch(benchmark, broker):
    """Time 1 000 messages from publish to subscriber callback."""
    received = threading.Semaphore(0)
    broker.subscribe("batch", lambda c, p: received.release())
    document = generate_document(random.Random(1), "key", 42)

    def burst():
        for index in range(1000):
            broker.publish("batch", {"seq": index, "document": document})
        for _ in range(1000):
            assert received.acquire(timeout=5.0)

    benchmark.pedantic(burst, rounds=3, iterations=1)


def test_json_codec_roundtrip(benchmark):
    """The per-message (de)serialization cost of the wire format."""
    codec = JsonCodec()
    document = generate_document(random.Random(1), "key", 42)
    payload = {"kind": "write", "key": "key", "version": 3,
               "op": "update", "document": document, "timestamp": 1.5}

    def roundtrip():
        return codec.decode(codec.encode(payload))

    result = benchmark(roundtrip)
    assert result == payload


@pytest.mark.parametrize("executor", sorted(EXECUTORS))
def test_burst_delivery_by_executor(benchmark, executor):
    """The same 1 000-message burst on each execution model."""
    broker = Broker(execution=EXECUTORS[executor]())
    try:
        counter = {"n": 0}
        broker.subscribe(
            "burst", lambda c, p: counter.__setitem__("n", counter["n"] + 1)
        )
        document = generate_document(random.Random(1), "key", 42)

        def burst():
            expected = counter["n"] + 1000
            for index in range(1000):
                broker.publish("burst", {"seq": index, "document": document})
            assert broker.drain(timeout=10.0)
            assert counter["n"] == expected

        benchmark.pedantic(burst, rounds=3, iterations=1)
    finally:
        broker.close()


def test_batched_vs_seed_dispatch_ratio(emit):
    """Acceptance gate: the batched threaded dispatcher must clear at
    least 1.5x the throughput of a seed-equivalent per-message
    dispatcher on a burst workload.

    The burst is pre-queued behind a gated subscriber and the dispatch
    phase alone is timed, with the no-op codec — isolating the
    substrate (lock round-trips, wake-ups, quiescence accounting) from
    the JSON wire cost that is identical on both sides.
    """

    def dispatch_rate(config: ExecutionConfig, n: int = 5000,
                      rounds: int = 5) -> float:
        best = None
        for _ in range(rounds):
            broker = Broker(codec=NoopCodec(), execution=config)
            gate = threading.Event()
            counter = {"n": 0}

            def listener(channel, payload):
                gate.wait(timeout=5.0)
                counter["n"] += 1

            broker.subscribe("burst", listener)
            for index in range(n):
                broker.publish("burst", {"seq": index})
            start = time.perf_counter()
            gate.set()
            assert broker.drain(timeout=30.0)
            elapsed = time.perf_counter() - start
            assert counter["n"] == n
            broker.close()
            best = elapsed if best is None else min(best, elapsed)
        return n / best

    batched = dispatch_rate(ExecutionConfig(max_batch=128))
    unbatched = dispatch_rate(ExecutionConfig(max_batch=1))
    ratio = batched / unbatched
    emit("Burst dispatch throughput (5000 msgs, no-op codec):")
    emit(f"  threaded-batched   (max_batch=128): {batched:12,.0f} msg/s")
    emit(f"  threaded-unbatched (max_batch=1):   {unbatched:12,.0f} msg/s")
    emit(f"  speedup: {ratio:.2f}x")
    assert ratio >= 1.5, (
        f"batched dispatch only {ratio:.2f}x over the seed-equivalent "
        f"per-message dispatcher (required: >= 1.5x)"
    )


def test_fanout_to_many_subscribers(benchmark, broker):
    """One message fanned out to 100 subscribers (multi-tenant case)."""
    received = threading.Semaphore(0)
    for _ in range(100):
        broker.subscribe("fanout", lambda c, p: received.release())

    def publish_and_wait():
        broker.publish("fanout", {"v": 1})
        for _ in range(100):
            assert received.acquire(timeout=5.0)

    benchmark.pedantic(publish_and_wait, rounds=10, iterations=1)
