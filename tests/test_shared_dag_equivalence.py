"""Equivalence suite: shared multi-query execution vs per-query paths.

PR 7 introduces two sharing layers behind config gates — the shared
predicate DAG in the filtering stage (``shared_query_dag``) and shared
sorted-window views in the sorting stage (``shared_sorted_windows``) —
plus churn-adaptive slack (``adaptive_slack``).  The sharing gates are
pure optimizations: every observable stream must be byte-identical to
the per-query paths.

* node level — filtering nodes emit identical match-event streams with
  the DAG on or off (including mid-stream deregistration and
  retained-write replay on late registration); sorting nodes emit
  identical per-query notification streams with windows shared or solo
  (including maintenance errors, renewal deltas and deactivation);
* cluster level — identical client-visible streams under the
  deterministic inline execution model for every gate combination,
  including a supervised crash + retained-write replay scenario;
  identical converged results under the threaded and process models;
* adaptive slack — the advisor grows preemptively for delete-heavy
  queries, backs off gently for stable ones, and hands slack back on
  healthy re-execution; the grow hint rides error notifications end to
  end.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.filtering import FilteringNode, MatchEvent
from repro.core.server import AppServer
from repro.core.sorting import SlackAdvisor, SortingNode
from repro.event.broker import Broker
from repro.query.engine import Query
from repro.runtime.execution import ExecutionConfig, InlineExecutionModel
from repro.runtime.faults import FaultPlan
from repro.types import AfterImage, MatchType, WriteKind

from tests.conftest import settle


# ----------------------------------------------------------------------
# Filtering: shared predicate DAG vs memoized per-query matching
# ----------------------------------------------------------------------

# A small fragment pool makes structural overlap the common case, like
# production populations of look-alike feed queries.
FRAGMENTS = [
    {"tags": "hot"},
    {"score": {"$gte": 50}},
    {"score": {"$lt": 20}},
    {"author.verified": True},
    {"hidden": {"$ne": True}},
    {"region": {"$in": ["eu", "us"]}},
]


def _combine(shape, picks):
    parts = [FRAGMENTS[i] for i in picks]
    if shape == "single" or len(parts) == 1:
        return dict(parts[0])
    if shape == "and":
        return {"$and": [dict(p) for p in parts]}
    if shape == "or":
        return {"$or": [dict(p) for p in parts]}
    if shape == "nor":
        return {"$nor": [dict(p) for p in parts]}
    # nested: an $or over an $and pair plus a plain fragment
    return {"$or": [{"$and": [dict(p) for p in parts[:-1]]},
                    dict(parts[-1])]}


@st.composite
def dag_workloads(draw):
    n_queries = draw(st.integers(4, 10))
    specs = []
    for index in range(n_queries):
        shape = draw(st.sampled_from(
            ["single", "and", "and", "or", "or", "nor", "nested"]
        ))
        picks = draw(st.lists(st.integers(0, len(FRAGMENTS) - 1),
                              min_size=1, max_size=3, unique=True))
        # limit variants keep query ids distinct even for equal filters
        specs.append((shape, tuple(picks), index + 1))
    steps = draw(st.lists(
        st.tuples(
            st.integers(0, 9),                        # key
            st.sampled_from(["up", "up", "up", "rm"]),
            st.integers(0, 100),                      # score
            st.booleans(),                            # hot tag
            st.booleans(),                            # verified
        ),
        min_size=4, max_size=25,
    ))
    drop_at = draw(st.integers(0, max(0, len(steps) - 1)))
    late_at = draw(st.integers(0, max(0, len(steps) - 1)))
    return specs, steps, drop_at, late_at


def _dag_queries(specs):
    return [
        Query(_combine(shape, picks), sort=[("score", -1)], limit=limit)
        for shape, picks, limit in specs
    ]


def _run_filtering(shared_dag, workload):
    specs, steps, drop_at, late_at = workload
    queries = _dag_queries(specs)
    node = FilteringNode((0, 0), retention_seconds=1e9,
                         memoize=True, shared_dag=shared_dag)
    stream = []
    for query in queries[:-1]:
        stream.append(("register",
                       node.register_query(query, [], {}, now=0.0)))
    versions = {key: 0 for key in range(10)}
    for step, (key, kind, score, hot, verified) in enumerate(steps):
        if step == drop_at:
            stream.append(("drop",
                           node.deactivate_query(queries[0].query_id)))
        if step == late_at:
            # Late registration: retained writes newer than the (empty)
            # bootstrap are replayed through the matching path.
            stream.append(("late", node.register_query(
                queries[-1], [], {}, now=float(step))))
        versions[key] += 1
        if kind == "rm":
            after = AfterImage(key=key, version=versions[key],
                               kind=WriteKind.DELETE, document=None,
                               timestamp=float(step))
        else:
            after = AfterImage(
                key=key, version=versions[key], kind=WriteKind.INSERT,
                document={
                    "_id": key, "score": score,
                    "tags": ["hot"] if hot else ["misc"],
                    "author": {"verified": verified},
                    "hidden": not verified and not hot,
                    "region": "eu" if hot else "apac",
                },
                timestamp=float(step))
        stream.append(("write", node.process_write(after, now=float(step))))
    return stream, node


@settings(max_examples=80, deadline=None)
@given(workload=dag_workloads())
def test_filtering_streams_identical_across_dag_gate(workload):
    """The shared-DAG path emits bit-for-bit the per-query stream —
    including replay on late registration and mid-stream deregistration
    — while actually serving decisions out of the DAG."""
    baseline, _ = _run_filtering(False, workload)
    shared, node = _run_filtering(True, workload)
    assert shared == baseline
    assert node.dag is not None
    assert node.dag.fallbacks == 0
    # Every registered query interned; structural overlap means the DAG
    # holds no more nodes than distinct subtrees.
    assert len(node.dag._roots) >= 1


def test_dag_refcounting_frees_exclusive_subtrees():
    node = FilteringNode((0, 0), shared_dag=True)
    q1 = Query({"$and": [{"a": 1}, {"b": 2}]})
    q2 = Query({"$and": [{"a": 1}, {"b": 2}]}, limit=None, collection="c2")
    q3 = Query({"a": 1})
    for q in (q1, q2, q3):
        node.register_query(q, [], {}, now=0.0)
    dag = node.dag
    size_full = len(dag)
    node.deactivate_query(q2.query_id)
    # q1 still holds the whole $and subtree.
    assert len(dag) == size_full
    node.deactivate_query(q1.query_id)
    # The $and node and the exclusive {"b": 2} leaf are freed; the
    # {"a": 1} leaf survives because q3 still references it.
    assert len(dag) == 1
    node.deactivate_query(q3.query_id)
    assert len(dag) == 0


def test_dag_crash_replay_identical_across_gate():
    """Rebuild-after-crash: a fresh node re-registering its queries and
    replaying retained writes emits identical streams either way."""
    queries = [Query({"score": {"$gte": 10}, "tags": "hot"},
                     sort=[("score", -1)], limit=i + 1) for i in range(5)]
    writes = [
        AfterImage(key=i % 4, version=i + 1, kind=WriteKind.INSERT,
                   document={"_id": i % 4, "score": 10 * i,
                             "tags": ["hot"]}, timestamp=float(i))
        for i in range(8)
    ]

    def rebuild(shared_dag):
        node = FilteringNode((0, 0), retention_seconds=1e9,
                             shared_dag=shared_dag)
        stream = []
        for after in writes:
            stream.append(node.process_write(after, now=after.timestamp))
        # Crash: a replacement node re-registers every query against a
        # stale bootstrap; the retained stream replays the gap.
        replacement = FilteringNode((0, 0), retention_seconds=1e9,
                                    shared_dag=shared_dag)
        for after in writes:
            replacement.process_write(after, now=after.timestamp)
        for query in queries:
            stream.append(replacement.register_query(
                query, [], {}, now=10.0))
        return stream

    assert rebuild(True) == rebuild(False)


# ----------------------------------------------------------------------
# Sorting: shared window views vs solo states
# ----------------------------------------------------------------------

def _view_event(query_id, kind, key, score, version, ts):
    if kind == "rm":
        return MatchEvent(query_id, MatchType.REMOVE, key, None,
                          version, ts, True)
    return MatchEvent(query_id, MatchType.ADD, key,
                      {"_id": key, "score": score}, version, ts, True)


def _register_sorted(node, query, documents, slack):
    rewritten = query.rewritten_for_subscription(slack)
    bootstrap = sorted(documents, key=query.sort.key)
    if rewritten.limit is not None:
        bootstrap = bootstrap[: rewritten.limit]
    versions = {doc["_id"]: 1 for doc in bootstrap}
    return node.register_query(query, [dict(d) for d in bootstrap],
                               versions, slack=slack)


@st.composite
def window_workloads(draw):
    slack = draw(st.sampled_from([1, 2, 3]))
    total = draw(st.integers(2, 6))          # offset + limit per view
    offsets = draw(st.lists(st.integers(0, total - 1), min_size=2,
                            max_size=4, unique=True))
    views = [(off, total - off, slack) for off in offsets]
    if draw(st.booleans()):
        # A different capacity: must land in its own group.
        views.append((0, total + 2, slack))
    bootstrap_scores = draw(st.lists(st.integers(0, 30), min_size=0,
                                     max_size=10))
    steps = draw(st.lists(
        st.tuples(st.integers(0, 11),
                  st.sampled_from(["up", "up", "rm"]),
                  st.integers(0, 30)),
        min_size=2, max_size=25,
    ))
    drop_at = draw(st.integers(0, max(0, len(steps) - 1)))
    return views, bootstrap_scores, steps, drop_at


def _run_sorting(shared, workload):
    views, bootstrap_scores, steps, drop_at = workload
    documents = [{"_id": f"k{i}", "score": score}
                 for i, score in enumerate(bootstrap_scores)]
    queries = [
        (Query({"score": {"$gte": 0}}, collection="c",
               sort=[("score", 1)], limit=lim, offset=off), slk)
        for off, lim, slk in views
    ]
    node = SortingNode(shared_windows=shared)
    stream = []
    for query, slk in queries:
        stream.append(("register", query.query_id,
                       _register_sorted(node, query, documents, slk)))
    versions = {f"k{i}": 1 for i in range(12)}
    for step, (key_index, kind, score) in enumerate(steps):
        if step == drop_at:
            stream.append(("drop",
                           node.deactivate_query(queries[0][0].query_id)))
        key = f"k{key_index}"
        versions[key] += 1
        for query, slk in queries:
            if node.state_of(query.query_id) is None:
                # Renewal after error or deactivation, fixed bootstrap.
                stream.append(("renew", query.query_id,
                               _register_sorted(node, query, documents,
                                                slk)))
            event = _view_event(query.query_id, kind, key, score,
                                versions[key], float(step))
            stream.append((kind, query.query_id,
                           node.handle_event(event)))
    stream.append(("renewals", node.renewals_requested))
    return stream, node


@settings(max_examples=80, deadline=None)
@given(workload=window_workloads())
def test_sorting_streams_identical_across_window_gate(workload):
    """Shared-window views emit bit-for-bit the solo per-query streams
    — including per-view maintenance errors (siblings survive), renewal
    deltas and mid-stream deactivation — while same-capacity views
    actually share one maintained core."""
    baseline, _ = _run_sorting(False, workload)
    shared, node = _run_sorting(True, workload)
    assert shared == baseline
    # At least the equal-capacity views grouped at initial bootstrap.
    assert node.shared_attach >= len(set(
        off for off, lim, slk in workload[0][:2]
    )) - 1


def test_shared_window_group_formation_and_cleanup():
    docs = [{"_id": i, "score": i} for i in range(10)]
    node = SortingNode(shared_windows=True)
    a = Query({}, collection="c", sort=[("score", 1)], limit=3)
    b = Query({}, collection="c", sort=[("score", 1)], limit=2, offset=1)
    c = Query({}, collection="c", sort=[("score", 1)], limit=5)  # cap !=
    for q in (a, b, c):
        _register_sorted(node, q, docs, slack=2)
    assert node.shared_group_count == 2
    assert node.shared_attach == 1           # b joined a's core
    node.deactivate_query(a.query_id)
    assert node.shared_group_count == 2      # b still holds the core
    node.deactivate_query(b.query_id)
    assert node.shared_group_count == 1      # empty core dropped
    node.deactivate_query(c.query_id)
    assert node.shared_group_count == 0


def test_shared_window_drifted_bootstrap_falls_back_solo():
    """A bootstrap that disagrees with the live core (lagging database
    snapshot) must not attach — the query runs solo instead."""
    docs = [{"_id": i, "score": i} for i in range(8)]
    node = SortingNode(shared_windows=True)
    a = Query({}, collection="c", sort=[("score", 1)], limit=3)
    _register_sorted(node, a, docs, slack=2)
    # Advance the core past the would-be bootstrap.
    node.handle_event(_view_event(a.query_id, "up", 0, 25, 2, 1.0))
    b = Query({}, collection="c", sort=[("score", 1)], limit=2, offset=1)
    _register_sorted(node, b, docs, slack=2)   # stale: pre-update docs
    assert node.shared_miss == 1
    assert node.shared_attach == 0
    # And the solo fallback still behaves: identical event handling.
    changes = node.handle_event(
        _view_event(b.query_id, "up", 0, 25, 2, 2.0))
    assert isinstance(changes, list)


def test_shared_window_interleaved_delivery_follows_apply_order():
    """Cross-partition interleaving: when a view's events arrive out of
    the core's apply order, earlier buffered results drain first so the
    view's stream still reads like a solo state applying the writes in
    core order."""
    docs = [{"_id": i, "score": i * 10} for i in range(6)]
    shared = SortingNode(shared_windows=True)
    a = Query({}, collection="c", sort=[("score", 1)], limit=3)
    b = Query({}, collection="c", sort=[("score", 1)], limit=2, offset=1)
    for q in (a, b):
        _register_sorted(shared, q, docs, slack=2)
    assert shared.shared_attach == 1
    w1 = lambda qid: _view_event(qid, "up", 9, 5, 1, 1.0)   # noqa: E731
    w2 = lambda qid: _view_event(qid, "up", 8, 15, 1, 2.0)  # noqa: E731
    # Interleaved: a@w1, a@w2, b@w2 (out of order for b), b@w1.
    out_a1 = shared.handle_event(w1(a.query_id))
    out_a2 = shared.handle_event(w2(a.query_id))
    out_b2 = shared.handle_event(w2(b.query_id))
    out_b1 = shared.handle_event(w1(b.query_id))
    # Solo twin of b applying the writes in core order (w1 then w2):
    solo = SortingNode(shared_windows=False)
    _register_sorted(solo, b, docs, slack=2)
    solo_1 = solo.handle_event(w1(b.query_id))
    solo_2 = solo.handle_event(w2(b.query_id))
    # b@w2 drained w1's buffered changes first, then emitted w2's.
    assert out_b2 == solo_1 + solo_2
    assert out_b1 == []          # already consumed via the drain
    # a saw plain in-order delivery.
    solo_a = SortingNode(shared_windows=False)
    _register_sorted(solo_a, a, docs, slack=2)
    assert out_a1 == solo_a.handle_event(w1(a.query_id))
    assert out_a2 == solo_a.handle_event(w2(a.query_id))


# ----------------------------------------------------------------------
# Adaptive slack: the advisor and the end-to-end grow hint
# ----------------------------------------------------------------------

class TestSlackAdvisor:
    def test_grows_aggressively_for_delete_heavy_queries(self):
        advisor = SlackAdvisor(growth_factor=4.0)
        for i in range(20):
            advisor.observe("q", MatchType.REMOVE if i % 2 else
                            MatchType.ADD, slack_remaining=1)
        advisor.observe_error("q")
        assert advisor.grow("q", 4) == 16

    def test_grows_gently_for_stable_queries(self):
        advisor = SlackAdvisor()
        for _ in range(40):
            advisor.observe("q", MatchType.ADD, slack_remaining=5)
        advisor.observe_error("q")
        # A fluke error on a stable query: one step, not a blind jump.
        assert advisor.grow("q", 8) == 9

    def test_shrinks_stable_queries_on_reexecution(self):
        advisor = SlackAdvisor(min_events=32)
        for _ in range(40):
            advisor.observe("q", MatchType.ADD, slack_remaining=9)
        assert advisor.shrink("q", 10) == 5

    def test_never_shrinks_below_floor(self):
        advisor = SlackAdvisor(min_events=1, floor=1)
        advisor.observe("q", MatchType.ADD, slack_remaining=1)
        assert advisor.shrink("q", 1) == 1

    def test_keeps_slack_when_low_water_dipped(self):
        advisor = SlackAdvisor(min_events=4)
        for _ in range(10):
            advisor.observe("q", MatchType.ADD, slack_remaining=2)
        # Low-water 2 < 10/2: the budget was actually needed.
        assert advisor.shrink("q", 10) == 10

    def test_keeps_slack_after_errors_or_churn(self):
        advisor = SlackAdvisor(min_events=4)
        for _ in range(10):
            advisor.observe("e", MatchType.ADD, slack_remaining=8)
        advisor.observe_error("e")
        assert advisor.shrink("e", 8) == 8
        for _ in range(10):
            advisor.observe("d", MatchType.REMOVE, slack_remaining=8)
        assert advisor.shrink("d", 8) == 8

    def test_unknown_query_is_conservative(self):
        advisor = SlackAdvisor()
        assert advisor.grow("ghost", 3) == 4
        assert advisor.shrink("ghost", 3) == 3


def test_error_change_carries_grow_hint():
    """With the gate on, the maintenance-error change recommends a
    slack sized to the observed churn (delete-heavy here)."""
    docs = [{"_id": i, "score": i} for i in range(8)]
    node = SortingNode(adaptive_slack=True)
    query = Query({}, collection="c", sort=[("score", 1)], limit=4)
    _register_sorted(node, query, docs, slack=2)
    version = 1
    error_changes = []
    for key in range(8):
        version += 1
        changes = node.handle_event(_view_event(
            query.query_id, "rm", key, 0, version, float(key)))
        error_changes.extend(c for c in changes if c.is_error)
        if error_changes:
            break
    assert error_changes, "delete storm must force a maintenance error"
    hint = error_changes[0].suggested_slack
    assert hint is not None and hint >= 8  # aggressive: 2 * factor


def test_adaptive_slack_gate_off_carries_no_hint():
    docs = [{"_id": i, "score": i} for i in range(8)]
    node = SortingNode()
    query = Query({}, collection="c", sort=[("score", 1)], limit=4)
    _register_sorted(node, query, docs, slack=2)
    version = 1
    for key in range(8):
        version += 1
        changes = node.handle_event(_view_event(
            query.query_id, "rm", key, 0, version, float(key)))
        for change in changes:
            if change.is_error:
                assert change.suggested_slack is None
                return
    pytest.fail("delete storm must force a maintenance error")


# ----------------------------------------------------------------------
# Cluster level: every gate combination, inline byte-equivalence
# ----------------------------------------------------------------------

GATES = [
    {},
    {"shared_query_dag": True},
    {"shared_sorted_windows": True},
    {"shared_query_dag": True, "shared_sorted_windows": True},
]

cluster_operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.sampled_from(["insert", "update", "delete"]),
        st.integers(min_value=0, max_value=50),
    ),
    min_size=1,
    max_size=24,
)


def _apply_cluster_op(app, live, key, op, value):
    if op == "insert":
        if key in live:
            app.update("items", key, {"$set": {"v": value}})
        else:
            app.insert("items", {"_id": key, "v": value})
            live.add(key)
    elif op == "update":
        if key in live:
            app.update("items", key, {"$set": {"v": value}})
    elif op == "delete":
        if key in live:
            app.delete("items", key)
            live.discard(key)


def _fingerprint(subscription):
    return [
        (n.match_type, n.key, json.dumps(n.document, sort_keys=True),
         n.index, n.old_index, n.error)
        for n in subscription.notifications
    ]


def _run_inline_cluster(ops, gates, plan=None):
    model = InlineExecutionModel(
        ExecutionConfig(mode="inline", seed=13, fault_plan=plan)
    )
    broker = Broker(execution=model)
    config = InvaliDBConfig(
        query_partitions=1, write_partitions=1,
        retention_seconds=3600.0, default_slack=2,
        **gates,
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("equiv-app", broker, config=config)
    try:
        live = set()
        half = len(ops) // 2
        for key, op, value in ops[:half]:
            _apply_cluster_op(app, live, key, op, value)
        assert broker.drain()
        # Same filter+sort, same capacity, different geometry: the
        # shared-window gate groups these; the DAG gate shares their
        # identical predicate tree with flat's.
        top = app.subscribe("items", {"v": {"$gte": 0}},
                            sort=[("v", -1)], limit=3)
        paged = app.subscribe("items", {"v": {"$gte": 0}},
                              sort=[("v", -1)], limit=2, offset=1)
        flat = app.subscribe("items", {"v": {"$gte": 10}})
        assert broker.drain()
        mid = half + max(1, (len(ops) - half) // 2)
        for key, op, value in ops[half:mid]:
            _apply_cluster_op(app, live, key, op, value)
        assert broker.drain()
        app.unsubscribe(paged)          # deregistration mid-stream
        assert broker.drain()
        for key, op, value in ops[mid:]:
            _apply_cluster_op(app, live, key, op, value)
        assert broker.drain()
        if plan is not None and model.fault_injector is not None:
            model.fault_injector.disarm()
            assert broker.drain()
        return (
            [d["_id"] for d in (top.initial.documents or [])],
            _fingerprint(top), _fingerprint(paged), _fingerprint(flat),
            json.dumps(top.result(), sort_keys=True),
            json.dumps(flat.result(), sort_keys=True),
            cluster.queries_renewed,
        )
    finally:
        app.close()
        cluster.stop()
        broker.close()
        model.shutdown()


@settings(max_examples=12, deadline=None)
@given(ops=cluster_operations)
def test_inline_cluster_streams_identical_across_gates(ops):
    baseline = _run_inline_cluster(ops, GATES[0])
    for gates in GATES[1:]:
        assert _run_inline_cluster(ops, gates) == baseline, gates


def test_inline_cluster_crash_replay_identical_across_gates():
    """Supervised crash + retained-write replay: the recovery stream is
    byte-identical under every sharing-gate combination."""
    ops = [(i % 6, "insert", i * 7 % 50) for i in range(12)] + \
          [(i % 6, "delete" if i % 3 == 0 else "update", i * 11 % 50)
           for i in range(12)]
    plan = FaultPlan().rule("mailbox", "matching*", "crash", at=[10])
    baseline = _run_inline_cluster(ops, GATES[0], plan=plan)
    assert baseline[-1] >= 0
    for gates in GATES[1:]:
        assert _run_inline_cluster(ops, gates, plan=plan) == baseline, gates


def _run_threaded_cluster(ops, gates):
    broker = Broker()
    config = InvaliDBConfig(
        query_partitions=2, write_partitions=2,
        retention_seconds=3600.0, default_slack=3,
        **gates,
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("equiv-app", broker, config=config)
    try:
        top = app.subscribe("items", {}, sort=[("v", -1)], limit=3)
        paged = app.subscribe("items", {}, sort=[("v", -1)], limit=2,
                              offset=1)
        flat = app.subscribe("items", {"v": {"$gte": 10}})
        live = set()
        for key, op, value in ops:
            _apply_cluster_op(app, live, key, op, value)
        settle(cluster, broker, rounds=5)
        truth_top = [d["_id"] for d in
                     app.find("items", {}, sort=[("v", -1)], limit=3)]
        truth_paged = [d["_id"] for d in
                       app.find("items", {}, sort=[("v", -1)],
                                limit=3)][1:3]
        truth_flat = {d["_id"] for d in app.find("items",
                                                 {"v": {"$gte": 10}})}
        return (
            [d["_id"] for d in top.result()], truth_top,
            [d["_id"] for d in paged.result()], truth_paged,
            {d["_id"] for d in flat.result()}, truth_flat,
        )
    finally:
        app.close()
        cluster.stop()
        broker.close()


@settings(max_examples=6, deadline=None)
@given(ops=cluster_operations)
def test_threaded_cluster_converges_identically_across_gates(ops):
    for gates in GATES:
        top, t_top, paged, t_paged, flat, t_flat = _run_threaded_cluster(
            ops, gates
        )
        assert top == t_top, gates
        assert paged == t_paged, gates
        assert flat == t_flat, gates


def test_process_cluster_converges_with_gates_on():
    broker = Broker()
    config = InvaliDBConfig(
        query_partitions=2, write_partitions=2,
        execution_model="process", process_workers=2,
        shared_query_dag=True, shared_sorted_windows=True,
        retention_seconds=3600.0, default_slack=3,
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("app-1", broker, config=config)
    try:
        top = app.subscribe("items", {}, sort=[("v", -1)], limit=3)
        paged = app.subscribe("items", {}, sort=[("v", -1)], limit=2,
                              offset=1)
        flat = app.subscribe("items", {"v": {"$gte": 10}})
        for i in range(20):
            app.insert("items", {"_id": i, "v": (i * 13) % 40})
        for i in range(0, 20, 3):
            app.update("items", i, {"$set": {"v": (i * 7) % 40}})
        for i in range(0, 20, 5):
            app.delete("items", i)
        settle(cluster, broker, rounds=6)
        assert [d["_id"] for d in top.result()] == [
            d["_id"] for d in app.find("items", {}, sort=[("v", -1)],
                                       limit=3)]
        assert [d["_id"] for d in paged.result()] == [
            d["_id"] for d in app.find("items", {}, sort=[("v", -1)],
                                       limit=3)][1:3]
        assert {d["_id"] for d in flat.result()} == {
            d["_id"] for d in app.find("items", {"v": {"$gte": 10}})}
    finally:
        app.close()
        cluster.stop()
        broker.close()


def test_adaptive_slack_hint_travels_to_client():
    """End to end under the inline model: a delete-heavy workload hits
    a maintenance error; the error notification carries the sorting
    stage's grow hint and the client's renewal slack honors it."""
    model = InlineExecutionModel(ExecutionConfig(mode="inline", seed=7))
    broker = Broker(execution=model)
    config = InvaliDBConfig(
        query_partitions=1, write_partitions=1,
        retention_seconds=3600.0, default_slack=1,
        adaptive_slack=True, renewal_min_interval=0.0,
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("adaptive-app", broker, config=config)
    try:
        for i in range(12):
            app.insert("items", {"_id": i, "v": i})
        assert broker.drain()
        sub = app.subscribe("items", {}, sort=[("v", 1)], limit=4)
        assert broker.drain()
        for i in range(12):
            app.delete("items", i)
        assert broker.drain()
        errors = [n for n in sub.notifications if n.is_error]
        assert errors
        hints = [n.suggested_slack for n in errors
                 if n.suggested_slack is not None]
        assert hints, "adaptive gate must attach grow hints"
        assert cluster.queries_renewed >= 1
        qid = sub.query.query_id
        assert app.client._slacks[qid] >= 2
    finally:
        app.close()
        cluster.stop()
        broker.close()
        model.shutdown()
