"""Two-dimensional partitioning tests (Section 5.1)."""

import pytest

from repro.core.partitioning import NodeCoordinates, PartitioningScheme, stable_hash
from repro.errors import ClusterConfigError
from repro.query.normalize import query_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("key") == stable_hash("key")
        assert stable_hash((1, "a")) == stable_hash((1, "a"))

    def test_spreads_values(self):
        buckets = {stable_hash(f"key-{i}") % 16 for i in range(500)}
        assert buckets == set(range(16))

    def test_int_float_key_unification(self):
        """A primary key written as 3 and 3.0 must route identically."""
        assert stable_hash(3) == stable_hash(3.0)

    def test_bool_is_not_int(self):
        assert stable_hash(True) != stable_hash(1)

    def test_structures(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})
        assert stable_hash([1, 2]) != stable_hash([2, 1])

    def test_64_bit_range(self):
        assert 0 <= stable_hash("x") < 2**64


class TestScheme:
    def test_validation(self):
        with pytest.raises(ClusterConfigError):
            PartitioningScheme(0, 1)
        with pytest.raises(ClusterConfigError):
            PartitioningScheme(1, 0)

    def test_grid_dimensions(self):
        scheme = PartitioningScheme(3, 4)
        assert scheme.node_count == 12
        assert len(list(scheme.all_nodes())) == 12

    def test_task_index_roundtrip(self):
        scheme = PartitioningScheme(3, 4)
        for node in scheme.all_nodes():
            assert scheme.coordinates(scheme.task_index(node)) == node
        with pytest.raises(ClusterConfigError):
            scheme.coordinates(12)

    def test_every_query_write_pair_meets_exactly_once(self):
        """THE core property: for any query and any write there is
        exactly one matching node responsible for the pair — the
        intersection of the query's partition row and the write's
        partition column."""
        scheme = PartitioningScheme(4, 3)
        for query_seed in range(25):
            q_hash = query_hash({"v": query_seed})
            query_nodes = set(scheme.nodes_for_query(q_hash))
            for key in range(25):
                write_nodes = set(scheme.nodes_for_write(key))
                intersection = query_nodes & write_nodes
                assert len(intersection) == 1
                assert intersection == {scheme.node_for(q_hash, key)}

    def test_query_row_covers_all_write_partitions(self):
        scheme = PartitioningScheme(4, 3)
        nodes = scheme.nodes_for_query(query_hash({"a": 1}))
        assert len(nodes) == 3
        assert {n.write_partition for n in nodes} == {0, 1, 2}
        assert len({n.query_partition for n in nodes}) == 1

    def test_write_column_covers_all_query_partitions(self):
        scheme = PartitioningScheme(4, 3)
        nodes = scheme.nodes_for_write("some-key")
        assert len(nodes) == 4
        assert {n.query_partition for n in nodes} == {0, 1, 2, 3}
        assert len({n.write_partition for n in nodes}) == 1

    def test_distribution_is_even(self):
        """Hash-partitioning spreads queries and writes evenly (the
        paper's 'as even as possible')."""
        scheme = PartitioningScheme(4, 4)
        query_counts = [0] * 4
        for seed in range(2000):
            query_counts[scheme.query_partition_of(query_hash({"v": seed}))] += 1
        write_counts = [0] * 4
        for key in range(2000):
            write_counts[scheme.write_partition_of(f"k{key}")] += 1
        for counts in (query_counts, write_counts):
            assert max(counts) - min(counts) < 250  # within 50% of mean/2

    def test_same_query_different_servers_same_partition(self):
        """Section 5.1: hashing query attributes (not subscription IDs)
        routes distinct subscriptions of one query to one partition."""
        scheme = PartitioningScheme(8, 1)
        server_a = query_hash({"year": {"$gte": 2017}}, collection="c")
        server_b = query_hash({"year": {"$gte": 2017}}, collection="c")
        assert scheme.query_partition_of(server_a) == (
            scheme.query_partition_of(server_b)
        )

    def test_coordinates_str(self):
        assert str(NodeCoordinates(2, 1)) == "qp2/wp1"
