"""Parser tests: query-document shapes, validation errors."""

import pytest

from repro.errors import QueryParseError, UnsupportedOperatorError
from repro.query.ast import (
    AllOf,
    Always,
    AnyOf,
    FieldPredicate,
    NoneOf,
    Not,
    iter_nodes,
    referenced_paths,
)
from repro.query.parser import SUPPORTED_OPERATORS, parse_query
from repro.query.text import TextSearch


class TestShapes:
    def test_empty_filter_is_always(self):
        assert isinstance(parse_query({}), Always)

    def test_single_field(self):
        node = parse_query({"a": 1})
        assert isinstance(node, FieldPredicate)
        assert node.path == "a"

    def test_implicit_and_over_fields(self):
        node = parse_query({"a": 1, "b": 2})
        assert isinstance(node, AllOf)
        assert len(node.branches) == 2

    def test_multiple_operators_on_one_field(self):
        node = parse_query({"a": {"$gte": 1, "$lt": 5}})
        assert isinstance(node, AllOf)
        assert all(isinstance(branch, FieldPredicate) for branch in node.branches)

    def test_or_nor(self):
        assert isinstance(parse_query({"$or": [{"a": 1}, {"b": 1}]}), AnyOf)
        assert isinstance(parse_query({"$nor": [{"a": 1}, {"b": 1}]}), NoneOf)

    def test_single_branch_and_collapses(self):
        node = parse_query({"$and": [{"a": 1}]})
        assert isinstance(node, FieldPredicate)

    def test_not_node(self):
        node = parse_query({"a": {"$not": {"$gt": 5}}})
        assert isinstance(node, Not)

    def test_text_node(self):
        node = parse_query({"$text": {"$search": "foo"}})
        assert isinstance(node, TextSearch)

    def test_operator_dict_with_dollar_field_is_equality_document(self):
        # A dict value with non-$ keys is an equality match on the
        # embedded document, not an operator expression.
        node = parse_query({"a": {"b": 1}})
        assert isinstance(node, FieldPredicate)


class TestErrors:
    def test_unsupported_operator(self):
        with pytest.raises(UnsupportedOperatorError):
            parse_query({"a": {"$near": [0, 0]}})

    def test_unsupported_top_level_operator(self):
        with pytest.raises(UnsupportedOperatorError):
            parse_query({"$where": "this.a == 1"})

    def test_logical_requires_array(self):
        with pytest.raises(QueryParseError):
            parse_query({"$or": {"a": 1}})
        with pytest.raises(QueryParseError):
            parse_query({"$or": []})

    def test_non_dict_filter(self):
        with pytest.raises(QueryParseError):
            parse_query([("a", 1)])

    def test_options_without_regex(self):
        with pytest.raises(QueryParseError):
            parse_query({"a": {"$options": "i"}})

    def test_empty_operator_document(self):
        with pytest.raises(QueryParseError):
            parse_query({"a": {"$not": {}}})

    def test_nested_not_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query({"a": {"$not": {"$not": {"$gt": 1}}}})

    def test_not_with_plain_value_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query({"a": {"$not": 5}})

    def test_elem_match_requires_document(self):
        with pytest.raises(QueryParseError):
            parse_query({"a": {"$elemMatch": 5}})
        with pytest.raises(QueryParseError):
            parse_query({"a": {"$elemMatch": {}}})

    def test_text_requires_search_string(self):
        with pytest.raises(QueryParseError):
            parse_query({"$text": {"$search": 5}})
        with pytest.raises(QueryParseError):
            parse_query({"$text": "foo"})


class TestIntrospection:
    def test_referenced_paths(self):
        node = parse_query(
            {"a": 1, "$or": [{"b.c": {"$gt": 2}}, {"a": {"$lt": 0}}]}
        )
        assert referenced_paths(node) == ("a", "b.c")

    def test_iter_nodes_preorder(self):
        node = parse_query({"a": 1, "b": 2})
        kinds = [type(n).__name__ for n in iter_nodes(node)]
        assert kinds[0] == "AllOf"
        assert kinds.count("FieldPredicate") == 2

    def test_supported_operator_listing(self):
        assert "$eq" in SUPPORTED_OPERATORS
        assert "$geoWithin" in SUPPORTED_OPERATORS
        assert "$text" in SUPPORTED_OPERATORS
