"""Unit tests for the $text and geo operator internals."""

import math

import pytest

from repro.errors import GeoError, QueryParseError
from repro.query.geo import (
    Box,
    Circle,
    EARTH_RADIUS_METERS,
    GeoWithin,
    NearSphere,
    Polygon,
    haversine_meters,
    point_in_polygon,
)
from repro.query.text import TextSearch, fold, parse_search, tokenize


class TestTokenizer:
    def test_tokenize_splits_and_folds(self):
        assert tokenize("Hello, World!") == ["hello", "world"]

    def test_fold_strips_diacritics(self):
        assert fold("Café") == "cafe"
        assert fold("STRASSE") == "strasse"

    def test_parse_search_components(self):
        parsed = parse_search('fast "real time" -slow databases')
        assert parsed.terms == ("fast", "databases")
        assert parsed.phrases == ("real time",)
        assert parsed.negated == ("slow",)


class TestTextSearch:
    def test_from_spec_validation(self):
        with pytest.raises(QueryParseError):
            TextSearch.from_spec({"$search": "x", "$caseSensitive": True})
        with pytest.raises(QueryParseError):
            TextSearch.from_spec({"$search": "x", "$unknown": 1})

    def test_phrase_only_search(self):
        node = TextSearch.from_spec({"$search": '"push based"'})
        assert node.matches_document({"t": "push based systems"})
        assert not node.matches_document({"t": "based on push"})

    def test_negation_only_rejects_hit(self):
        node = TextSearch.from_spec({"$search": "-legacy"})
        assert not node.matches_document({"t": "legacy code"})


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_meters((10.0, 50.0), (10.0, 50.0)) == 0.0

    def test_quarter_meridian(self):
        # Equator to pole along a meridian: a quarter of the circumference.
        distance = haversine_meters((0.0, 0.0), (0.0, 90.0))
        expected = math.pi * EARTH_RADIUS_METERS / 2
        assert distance == pytest.approx(expected, rel=1e-6)

    def test_hamburg_berlin_plausible(self):
        distance = haversine_meters((9.99, 53.55), (13.40, 52.52))
        assert 230_000 < distance < 280_000


class TestPolygon:
    SQUARE = [(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]

    def test_inside(self):
        assert point_in_polygon((2, 2), self.SQUARE)

    def test_outside(self):
        assert not point_in_polygon((5, 2), self.SQUARE)

    def test_on_edge_counts_as_inside(self):
        assert point_in_polygon((2, 0), self.SQUARE)
        assert point_in_polygon((0, 0), self.SQUARE)

    def test_concave_polygon(self):
        concave = [(0, 0), (4, 0), (4, 4), (2, 2), (0, 4)]
        assert point_in_polygon((1, 1), concave)
        assert not point_in_polygon((2, 3.5), concave)

    def test_geojson_ring_closing_vertex_dropped(self):
        ring = [[0, 0], [4, 0], [4, 4], [0, 4], [0, 0]]
        assert len(Polygon(ring).vertices) == 4

    def test_too_few_vertices(self):
        with pytest.raises(QueryParseError):
            Polygon([[0, 0], [1, 1]])


class TestShapes:
    def test_box_normalizes_corners(self):
        box = Box([[11, 54], [9, 52]])  # corners swapped
        assert box.contains((10, 53))

    def test_center_planar(self):
        circle = Circle([[0, 0], 2.0], spherical=False)
        assert circle.contains((1, 1))
        assert not circle.contains((2, 2))

    def test_center_sphere_radians(self):
        # 0.01 rad of arc is ~63.7 km.
        circle = Circle([[10, 53], 0.01], spherical=True)
        assert circle.contains((10.3, 53))
        assert not circle.contains((12, 53))

    def test_geo_within_geometry_polygon(self):
        operator = GeoWithin(
            {"$geometry": {"type": "Polygon",
                           "coordinates": [[[0, 0], [4, 0], [4, 4], [0, 4],
                                            [0, 0]]]}}
        )
        assert operator.evaluate([2, 2])
        assert operator.evaluate({"type": "Point", "coordinates": [2, 2]})
        assert not operator.evaluate([9, 9])
        assert not operator.evaluate("not a point")

    def test_geo_within_requires_single_shape(self):
        with pytest.raises(QueryParseError):
            GeoWithin({"$box": [[0, 0], [1, 1]], "$polygon": []})
        with pytest.raises(QueryParseError):
            GeoWithin({"$sphere": 1})


class TestNearSphere:
    def test_min_and_max_distance(self):
        operator = NearSphere(
            {
                "$geometry": {"type": "Point", "coordinates": [10, 53]},
                "$minDistance": 10_000,
                "$maxDistance": 100_000,
            }
        )
        assert not operator.evaluate([10, 53])  # inside min distance
        assert operator.evaluate([10.5, 53])  # ~33 km
        assert not operator.evaluate([13, 53])  # ~200 km

    def test_legacy_pair_form(self):
        operator = NearSphere([10, 53])
        assert operator.evaluate([11, 54])  # no max distance: everything

    def test_invalid_distances(self):
        with pytest.raises(QueryParseError):
            NearSphere({"$geometry": {"type": "Point", "coordinates": [0, 0]},
                        "$maxDistance": -1})


class TestGeoParserAudit:
    """Regression pins for the degenerate-input audit: every malformed
    shape is a parse-time QueryParseError, never a silent mis-match."""

    def test_degenerate_polygon_duplicate_vertices(self):
        with pytest.raises(QueryParseError, match="distinct"):
            Polygon([[1, 1], [1, 1], [1, 1]])

    def test_collapsed_ring_after_closing_vertex(self):
        # Closing duplicate is dropped first, leaving only two points.
        with pytest.raises(QueryParseError):
            Polygon([[0, 0], [1, 1], [0, 0]])

    def test_empty_polygon(self):
        with pytest.raises(QueryParseError):
            Polygon([])

    def test_zero_radius_circle_contains_exactly_center(self):
        circle = Circle([[10, 53], 0.0], spherical=True)
        assert circle.contains((10, 53))
        assert not circle.contains((10.0001, 53))

    def test_nan_radius_rejected(self):
        for spherical in (False, True):
            with pytest.raises(QueryParseError):
                Circle([[0, 0], float("nan")], spherical=spherical)

    def test_infinite_radius_rejected(self):
        with pytest.raises(QueryParseError):
            Circle([[0, 0], float("inf")], spherical=True)

    def test_non_finite_coordinates_rejected(self):
        with pytest.raises(QueryParseError):
            Box([[float("nan"), 0], [1, 1]])
        with pytest.raises(QueryParseError):
            Polygon([[0, 0], [float("inf"), 0], [1, 1]])

    def test_spherical_center_must_be_on_the_sphere(self):
        with pytest.raises(QueryParseError):
            Circle([[200, 0], 0.1], spherical=True)
        with pytest.raises(QueryParseError):
            NearSphere({"$geometry": {"type": "Point",
                                      "coordinates": [0, 95]}})

    def test_near_sphere_nan_distance_rejected(self):
        with pytest.raises(QueryParseError):
            NearSphere({"$geometry": {"type": "Point",
                                      "coordinates": [0, 0]},
                        "$maxDistance": float("nan")})

    def test_near_sphere_min_above_max_rejected(self):
        with pytest.raises(QueryParseError):
            NearSphere({"$geometry": {"type": "Point",
                                      "coordinates": [0, 0]},
                        "$minDistance": 2_000, "$maxDistance": 1_000})

    def test_near_sphere_without_max_distance_is_unbounded(self):
        # Documented behaviour: no $maxDistance means every point on
        # the sphere satisfies the distance filter (subject to $min).
        operator = NearSphere({"$geometry": {"type": "Point",
                                             "coordinates": [0, 0]}})
        assert operator.evaluate([179, -89])
        assert operator.bounding_boxes() is None  # whole sphere


class TestTokenizeCache:
    def test_cached_result_is_a_fresh_list(self):
        first = tokenize("Alpha beta")
        first.append("mutated")
        assert tokenize("Alpha beta") == ["alpha", "beta"]

    def test_cache_agrees_with_direct_tokenization(self):
        from repro.query.text import _TOKEN_RE, _cached_tokens

        for text in ["Crème BRÛLÉE", "don't stop", "", "a  b\tc"]:
            assert list(_cached_tokens(text)) == _TOKEN_RE.findall(
                fold(text)
            )

    def test_document_tokens_spans_nested_strings(self):
        from repro.query.text import document_tokens

        doc = {"a": "Alpha", "b": {"c": ["Beta", {"d": "gamma"}]}, "e": 1}
        assert document_tokens(doc) == {"alpha", "beta", "gamma"}
