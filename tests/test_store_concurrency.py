"""Concurrency tests for the store substrate.

The collection is the shared mutable heart of the system — app-server
threads write while the broker dispatcher reads for bootstraps.  These
tests hammer it from several threads and assert no lost updates,
duplicate versions, or torn reads.
"""

import threading

import pytest

from repro.errors import DocumentNotFoundError, DuplicateKeyError
from repro.store.collection import Collection
from repro.store.sharding import ShardedCollection


class TestConcurrentWrites:
    def test_parallel_inserts_disjoint_keys(self):
        collection = Collection("par")
        errors = []

        def insert_range(base):
            try:
                for index in range(200):
                    collection.insert({"_id": base + index, "v": index})
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=insert_range, args=(base,))
                   for base in (0, 1000, 2000, 3000)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(collection) == 800

    def test_exactly_one_insert_wins_on_key_collision(self):
        collection = Collection("collide")
        outcomes = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def racer(value):
            barrier.wait()
            try:
                collection.insert({"_id": "contested", "v": value})
                with lock:
                    outcomes.append(("ok", value))
            except DuplicateKeyError:
                with lock:
                    outcomes.append(("dup", value))

        threads = [threading.Thread(target=racer, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        winners = [o for o in outcomes if o[0] == "ok"]
        assert len(winners) == 1
        assert collection.get("contested")["v"] == winners[0][1]

    def test_concurrent_updates_produce_dense_versions(self):
        collection = Collection("versions")
        collection.insert({"_id": 1, "n": 0})

        def bump():
            for _ in range(100):
                collection.update(1, {"$inc": {"n": 1}})

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # 1 insert + 400 updates: version is dense, counter exact.
        assert collection.version_of(1) == 401
        assert collection.get(1)["n"] == 400
        # The oplog saw every version exactly once.
        versions = [entry.version for entry in collection.oplog.read_from(1)]
        assert sorted(versions) == list(range(1, 402))

    def test_readers_never_see_torn_documents(self):
        collection = Collection("torn")
        collection.insert({"_id": 1, "a": 0, "b": 0})
        stop = threading.Event()
        torn = []

        def writer():
            value = 0
            while not stop.is_set():
                value += 1
                collection.replace({"_id": 1, "a": value, "b": value})

        def reader():
            while not stop.is_set():
                document = collection.get(1)
                if document["a"] != document["b"]:
                    torn.append(document)

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        import time

        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join()
        assert torn == []

    def test_concurrent_delete_update_race_is_safe(self):
        collection = Collection("race")
        for index in range(100):
            collection.insert({"_id": index, "v": 0})
        errors = []

        def deleter():
            for index in range(100):
                try:
                    collection.delete(index)
                except DocumentNotFoundError:
                    pass
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

        def updater():
            for index in range(100):
                try:
                    collection.update(index, {"$inc": {"v": 1}})
                except DocumentNotFoundError:
                    pass
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

        threads = [threading.Thread(target=deleter),
                   threading.Thread(target=updater)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(collection) == 0


class TestConcurrentSharded:
    def test_parallel_writes_across_shards(self):
        sharded = ShardedCollection("par", shards=4)

        def work(base):
            for index in range(150):
                sharded.insert({"_id": f"{base}-{index}", "v": index})

        threads = [threading.Thread(target=work, args=(base,))
                   for base in ("a", "b", "c")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(sharded) == 450
        assert sharded.count({"v": {"$gte": 100}}) == 150
