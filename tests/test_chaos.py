"""The chaos suite: fault injection + supervised recovery, end to end.

The paper's availability story (Section 5) is exercised under injected
faults: write messages are dropped, duplicated and delayed at the event
layer, and one matching node is crashed mid-stream.  The claims under
test:

* **convergence** — after the chaos window closes, supervised recovery
  (restart + re-registration + retained-write replay) plus client
  re-subscription drive every result set byte-identical to a no-fault
  run of the same workload and to the database ground truth;
* **determinism** — under the inline execution model with a fixed
  seed, repeated runs produce identical fault schedules, notification
  transcripts and counters;
* **observability** — ``stats()`` reports the injected faults, node
  restarts, replayed writes and query renewals; a no-fault run reports
  zeros everywhere.

The threaded variant runs the same scenario against real threads and
wall-clock timers; it asserts convergence only (interleavings are
nondeterministic by nature).
"""

import json
import time

import pytest

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.event.broker import Broker
from repro.runtime.execution import (
    ExecutionConfig,
    InlineExecutionModel,
    ThreadedExecutionModel,
)
from repro.runtime.faults import FaultPlan


class SteppingClock:
    """Deterministic time source: every read advances a fixed step."""

    def __init__(self, start: float = 1000.0, step: float = 0.001):
        self.now = start
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def chaos_plan(seed: int) -> FaultPlan:
    """The acceptance scenario: 10% drops, 5% duplicates, 5% delays on
    the write channel, and exactly one matching-node crash mid-stream."""
    return (
        FaultPlan(seed=seed)
        .rule("channel", "invalidb:writes*", "drop", probability=0.10)
        .rule("channel", "invalidb:writes*", "duplicate", probability=0.05)
        .rule("channel", "invalidb:writes*", "delay", delay=0.5, probability=0.05)
        .rule("mailbox", "matching*", "crash", at=[40])
    )


def crash_only_plan() -> FaultPlan:
    """One scripted matching-node crash, nothing else."""
    return FaultPlan().rule("mailbox", "matching*", "crash", at=[30])


def apply_workload(app: AppServer) -> None:
    """Deterministic write mix: inserts, updates, deletes."""
    for i in range(40):
        app.insert("items", {"_id": i, "v": i})
    for i in range(0, 40, 2):
        app.update("items", i, {"$set": {"v": i + 100}})
    for i in range(0, 40, 5):
        app.delete("items", i)


def transcript(subscription) -> list:
    """Timestamp-free transcript of everything a subscription saw."""
    return [
        (
            n.match_type.value, n.key, n.version, n.index, n.old_index,
            json.dumps(n.document, sort_keys=True, default=str),
        )
        for n in subscription.notifications
    ]


def run_inline_scenario(seed: int, plan=None, resubscribe: bool = False):
    """Run the chaos workload on the deterministic inline model and
    return a fully-serializable snapshot of everything observable."""
    model = InlineExecutionModel(
        ExecutionConfig(mode="inline", seed=seed, fault_plan=plan)
    )
    broker = Broker(execution=model)
    config = InvaliDBConfig(
        query_partitions=2, write_partitions=2,
        retention_seconds=300.0, clock=SteppingClock(),
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("chaos-app", broker, config=config)
    try:
        flat = app.subscribe("items", {"v": {"$gte": 0}})
        top = app.subscribe("items", {}, sort=[("v", -1)], limit=5)
        assert broker.drain()
        apply_workload(app)
        assert broker.drain()
        injector = model.fault_injector
        if injector is not None:
            injector.disarm()
        assert broker.drain()  # flush delayed copies of the chaos window
        if resubscribe:
            app.client.resubscribe_all()
            assert broker.drain()
        stats = cluster.stats()
        crashed_versions = {}
        for index in range(cluster.matching_node_count):
            node = cluster._filtering_nodes[index]
            crashed_versions[index] = dict(node.retention._versions)
        return {
            "flat_result": json.dumps(
                sorted(flat.result(), key=lambda d: d["_id"]),
                sort_keys=True,
            ),
            "top_result": json.dumps(top.result(), sort_keys=True),
            "db_flat": json.dumps(
                sorted(app.find("items", {"v": {"$gte": 0}}),
                       key=lambda d: d["_id"]),
                sort_keys=True,
            ),
            "db_top": json.dumps(
                app.find("items", {}, sort=[("v", -1)], limit=5),
                sort_keys=True,
            ),
            "transcripts": (transcript(flat), transcript(top)),
            "node_versions": crashed_versions,
            "faults": stats["faults"],
            "supervisor": stats["supervisor"],
            "queries_renewed": stats["queries_renewed"],
            "client": app.client.stats(),
        }
    finally:
        app.close()
        cluster.stop()
        broker.close()
        model.shutdown()


class TestCrashOnlyRecovery:
    """Scripted crash, clean event layer: replay alone must repair."""

    def test_replay_reconstructs_node_state_byte_identically(self):
        faulted = run_inline_scenario(7, plan=crash_only_plan())
        baseline = run_inline_scenario(7, plan=None)
        # The supervisor detected the crash, restarted the node and
        # replayed its write partition's retained stream.
        assert faulted["supervisor"]["restarts"] == 1
        assert faulted["supervisor"]["reregistered_queries"] >= 1
        assert faulted["supervisor"]["replayed_writes"] >= 1
        # Per-node version maps equal the no-fault run's exactly: the
        # versioned-write comparison proving reconstruction is lossless
        # when nothing was lost at the event layer.
        assert faulted["node_versions"] == baseline["node_versions"]
        # Client-visible results converge without any re-subscription.
        assert faulted["flat_result"] == baseline["flat_result"]
        assert faulted["top_result"] == baseline["top_result"]
        assert faulted["flat_result"] == faulted["db_flat"]
        assert faulted["top_result"] == faulted["db_top"]


class TestChaosConvergence:
    """The full acceptance scenario: drop 10% / duplicate 5% / delay 5%
    of write messages and crash one matching node mid-stream."""

    @pytest.mark.parametrize("seed", range(10))
    def test_converges_to_no_fault_results(self, seed):
        faulted = run_inline_scenario(
            seed, plan=chaos_plan(seed), resubscribe=True
        )
        baseline = run_inline_scenario(seed, plan=None)
        # Result sets and sorted views are byte-identical to the
        # no-fault run and to the database ground truth.
        assert faulted["flat_result"] == baseline["flat_result"]
        assert faulted["top_result"] == baseline["top_result"]
        assert faulted["flat_result"] == faulted["db_flat"]
        assert faulted["top_result"] == faulted["db_top"]

    @pytest.mark.parametrize("seed", range(10))
    def test_same_seed_runs_are_identical(self, seed):
        first = run_inline_scenario(
            seed, plan=chaos_plan(seed), resubscribe=True
        )
        second = run_inline_scenario(
            seed, plan=chaos_plan(seed), resubscribe=True
        )
        assert first["transcripts"] == second["transcripts"]
        assert first["faults"] == second["faults"]
        assert first["supervisor"] == second["supervisor"]
        assert first["flat_result"] == second["flat_result"]
        assert first["top_result"] == second["top_result"]

    def test_counters_nonzero_under_chaos(self):
        faulted = run_inline_scenario(3, plan=chaos_plan(3),
                                      resubscribe=True)
        assert faulted["faults"]["injected"] > 0
        assert faulted["faults"]["dropped"] > 0
        assert faulted["faults"]["crashes"] == 1
        assert faulted["supervisor"]["restarts"] >= 1
        assert faulted["supervisor"]["replayed_writes"] >= 1
        assert faulted["queries_renewed"] >= 2  # both re-subscriptions
        assert faulted["client"]["resubscribes"] == 2

    def test_counters_zero_without_faults(self):
        baseline = run_inline_scenario(3, plan=None)
        assert baseline["faults"]["injected"] == 0
        assert baseline["faults"]["dropped"] == 0
        assert baseline["faults"]["crashes"] == 0
        assert baseline["supervisor"]["restarts"] == 0
        assert baseline["supervisor"]["replayed_writes"] == 0
        assert baseline["queries_renewed"] == 0
        assert baseline["client"]["publish_retries"] == 0
        assert baseline["client"]["publish_failures"] == 0


class TestThreadedChaos:
    """Same scenario on real threads: convergence under wall-clock."""

    def test_threaded_chaos_converges(self):
        plan = (
            FaultPlan(seed=17)
            .rule("channel", "invalidb:writes*", "drop", probability=0.10)
            .rule("channel", "invalidb:writes*", "duplicate", probability=0.05)
            .rule("channel", "invalidb:writes*", "delay", delay=0.05,
                  probability=0.05)
            .rule("mailbox", "matching*", "crash", at=[40])
        )
        model = ThreadedExecutionModel(ExecutionConfig(fault_plan=plan))
        broker = Broker(execution=model)
        # Short retention: the crash recovery replays within the
        # window, and the post-chaos re-subscription happens after it
        # expired — so stale after-images of *lost deletes* (tombstones
        # the cluster never saw) cannot race the client's catch-up diff.
        config = InvaliDBConfig(
            query_partitions=2, write_partitions=2,
            retention_seconds=0.75,
            supervisor_backoff_base=0.01,
        )
        cluster = InvaliDBCluster(broker, config).start()
        app = AppServer("threaded-chaos", broker, config=config)
        try:
            flat = app.subscribe("items", {"v": {"$gte": 0}})
            top = app.subscribe("items", {}, sort=[("v", -1)], limit=5)
            assert broker.drain(timeout=10.0)
            apply_workload(app)
            assert broker.drain(timeout=10.0)
            # Wait (wall clock) for the supervisor to restart the
            # crashed node; the backoff timer is untracked by drain().
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if cluster.supervisor.stats()["restarts"] >= 1:
                    break
                time.sleep(0.01)
            assert cluster.supervisor.stats()["restarts"] >= 1
            model.fault_injector.disarm()
            assert broker.drain(timeout=10.0)
            # Let the retention window lapse so renewal does not replay
            # stale state, then reconcile against the database.
            time.sleep(config.retention_seconds + 0.3)
            app.client.resubscribe_all()
            assert broker.drain(timeout=10.0)
            expected_flat = sorted(
                app.find("items", {"v": {"$gte": 0}}),
                key=lambda d: d["_id"],
            )
            expected_top = app.find("items", {}, sort=[("v", -1)],
                                    limit=5)
            assert sorted(flat.result(),
                          key=lambda d: d["_id"]) == expected_flat
            assert top.result() == expected_top
            assert cluster.stats()["faults"]["injected"] > 0
        finally:
            app.close()
            cluster.stop()
            broker.close()
            model.shutdown()
