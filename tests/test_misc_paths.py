"""Coverage for auxiliary paths: background pollers, renewal timers,
experiment helpers, stage piping."""

import time

import pytest

from repro.core.config import InvaliDBConfig
from repro.core.stages import pipe
from repro.baselines.poll_and_diff import PollAndDiffProvider
from repro.store.collection import Collection

from tests.conftest import settle


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestPollAndDiffBackgroundThread:
    def test_background_poller_delivers(self):
        collection = Collection("bg")
        provider = PollAndDiffProvider(collection, poll_interval=0.05)
        subscription = provider.subscribe({"v": {"$gte": 0}})
        provider.start()
        try:
            collection.insert({"_id": 1, "v": 1})
            assert wait_for(lambda: subscription.change_count >= 1)
        finally:
            provider.stop()

    def test_start_is_idempotent(self):
        collection = Collection("bg2")
        provider = PollAndDiffProvider(collection, poll_interval=10.0)
        provider.start()
        provider.start()  # second start must not spawn a second thread
        provider.stop()
        provider.stop()  # double-stop is safe


class TestRateLimitedRenewalTimer:
    def test_suppressed_renewal_fires_later(self, broker, cluster_factory,
                                            app_server_factory):
        """A renewal blocked by the poll-frequency limit is retried
        automatically once the interval elapsed."""
        cluster = cluster_factory(1, 1, default_slack=1,
                                  renewal_min_interval=0.3)
        config = InvaliDBConfig(default_slack=1, renewal_min_interval=0.3)
        app = app_server_factory("timer-app", config=config)
        for index in range(12):
            app.insert("articles", {"_id": index, "year": 2000 + index})
        settle(cluster, broker)
        subscription = app.subscribe("articles", {}, sort=[("year", -1)],
                                     limit=3)
        # Burn the renewal budget, then exhaust slack repeatedly so at
        # least one renewal lands in the rate-limited window.
        for key in (11, 10, 9, 8, 7, 6):
            app.delete("articles", key)
            time.sleep(0.05)
        settle(cluster, broker, rounds=6)
        assert wait_for(
            lambda: [d["_id"] for d in subscription.result()] == [5, 4, 3],
            timeout=10.0,
        ), [d["_id"] for d in subscription.result()]


class TestExperimentHelpers:
    def test_max_sustainable_queries_helper(self):
        from repro.sim.experiment import max_sustainable_queries

        value = max_sustainable_queries(1, sla_ms=100.0, duration=3.0)
        assert 1000 <= value <= 2000

    def test_max_sustainable_write_rate_helper(self):
        from repro.sim.experiment import max_sustainable_write_rate

        value = max_sustainable_write_rate(1, sla_ms=100.0, duration=3.0)
        assert 1000 <= value <= 2000


class TestStagePipe:
    def test_pipe_preserves_event_order(self):
        from repro.core.aggregation import AggregateSpec, AggregationNode
        from repro.core.filtering import MatchEvent
        from repro.query.engine import Query
        from repro.types import MatchType

        query = Query({"v": {"$gte": 0}})
        node = AggregationNode()
        node.register_query(query, [], {},
                            aggregates=(AggregateSpec("count"),))
        events = [
            MatchEvent(query.query_id, MatchType.ADD, index,
                       {"_id": index, "v": index}, 1, 0.0, False)
            for index in range(5)
        ]
        changes = pipe(node, events)
        counts = [change.document["count"] for change in changes]
        assert counts == [1, 2, 3, 4, 5]


class TestClusterIntrospection:
    def test_filtering_node_accessor(self, broker, cluster_factory):
        cluster = cluster_factory(2, 3)
        time.sleep(0.1)  # allow prepare() to run on all tasks
        assert cluster.matching_node_count == 6
        node = cluster.filtering_node(1, 2)
        assert node is not None
        assert node.coordinates.query_partition == 1
        assert node.coordinates.write_partition == 2
        assert cluster.filtering_node(5, 5) is None


class TestInstrumentation:
    def test_bootstrap_latency_monitoring(self, broker, cluster_factory,
                                          app_server_factory):
        """The paper monitors pull-based query latencies (Section 5.4)."""
        cluster = cluster_factory(1, 1)
        app = app_server_factory()
        for index in range(50):
            app.insert("items", {"_id": index, "v": index})
        app.subscribe("items", {"v": {"$gte": 10}})
        app.subscribe("items", {"v": {"$lt": 5}})
        stats = app.client.bootstrap_latency_stats()
        assert stats["count"] == 2
        assert stats["average"] > 0
        assert stats["maximum"] >= stats["average"]

    def test_empty_latency_stats(self, broker, cluster_factory,
                                 app_server_factory):
        cluster_factory(1, 1)
        app = app_server_factory()
        assert app.client.bootstrap_latency_stats() == {
            "count": 0, "average": 0.0, "maximum": 0.0,
        }

    def test_cluster_stats_snapshot(self, broker, cluster_factory,
                                    app_server_factory):
        cluster = cluster_factory(2, 2)
        app = app_server_factory()
        app.subscribe("items", {"v": {"$gte": 0}})
        app.insert("items", {"_id": 1, "v": 1})
        settle(cluster, broker)
        stats = cluster.stats()
        assert stats["grid"] == "2x2"
        assert stats["active_queries"] == 1
        assert stats["app_servers"] == ["app-1"]
        assert stats["notifications_sent"] >= 1
        assert len(stats["matching_nodes"]) == 4
