"""Tests for shared value types and cluster configuration."""

import pytest

from repro.core.config import InvaliDBConfig
from repro.errors import ClusterConfigError
from repro.types import (
    AfterImage,
    ChangeNotification,
    IdGenerator,
    MatchType,
    WriteKind,
    require_key,
)


class TestAfterImage:
    def test_delete_must_not_carry_document(self):
        with pytest.raises(ValueError):
            AfterImage(1, 1, WriteKind.DELETE, {"_id": 1})

    def test_insert_requires_document(self):
        with pytest.raises(ValueError):
            AfterImage(1, 1, WriteKind.INSERT, None)

    def test_is_delete(self):
        assert AfterImage(1, 1, WriteKind.DELETE, None).is_delete
        assert not AfterImage(1, 1, WriteKind.INSERT, {"_id": 1}).is_delete


class TestChangeNotification:
    def test_error_flag(self):
        error = ChangeNotification("s", "q", MatchType.ERROR, error="boom")
        assert error.is_error
        regular = ChangeNotification("s", "q", MatchType.ADD, key=1)
        assert not regular.is_error

    def test_match_type_values_match_paper(self):
        assert MatchType.ADD.value == "add"
        assert MatchType.CHANGE.value == "change"
        assert MatchType.CHANGE_INDEX.value == "changeIndex"
        assert MatchType.REMOVE.value == "remove"


class TestIdGenerator:
    def test_unique_and_ordered(self):
        generator = IdGenerator("sub")
        first, second = generator.next(), generator.next()
        assert first != second
        assert first == "sub-1" and second == "sub-2"

    def test_thread_safety(self):
        import threading

        generator = IdGenerator("x")
        seen = []
        lock = threading.Lock()

        def grab():
            for _ in range(200):
                value = generator.next()
                with lock:
                    seen.append(value)

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(seen) == len(set(seen)) == 800

    def test_require_key(self):
        assert require_key({"_id": 7}) == 7
        with pytest.raises(KeyError):
            require_key({})


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = InvaliDBConfig()
        assert config.matching_node_count == 1

    def test_matching_node_count(self):
        config = InvaliDBConfig(query_partitions=3, write_partitions=4)
        assert config.matching_node_count == 12

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"query_partitions": 0},
            {"write_partitions": 0},
            {"sorting_nodes": 0},
            {"write_ingestion_nodes": 0},
            {"retention_seconds": -1},
            {"default_slack": 0},
            {"renewal_slack_factor": 0.5},
            {"heartbeat_interval": 2.0, "heartbeat_timeout": 1.0},
            {"subscription_ttl": 0},
            {"renewal_min_interval": -1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ClusterConfigError):
            InvaliDBConfig(**kwargs)
