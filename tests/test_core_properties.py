"""Property-based tests of InvaliDB's core maintenance invariants.

The central correctness property of the whole system: for ANY sequence
of writes, the incrementally maintained result of the filtering stage
(and, for sorted queries, of the sorting stage) equals the result of
re-executing the query from scratch over the final database state.
Driven deterministically (no threads) so hypothesis shrinking works.
"""

from typing import Any, Dict, List

from hypothesis import given, settings, strategies as st

from repro.core.filtering import FilteringNode, MatchEvent
from repro.core.partitioning import NodeCoordinates, PartitioningScheme
from repro.core.sorting import SortingNode
from repro.query.engine import Query
from repro.types import AfterImage, MatchType, WriteKind

# -- operation generator ------------------------------------------------------

KEYS = list(range(8))

operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete"]),
        st.sampled_from(KEYS),
        st.integers(min_value=0, max_value=30),  # the filtered value
    ),
    min_size=0,
    max_size=40,
)


def apply_operations(ops) -> List[AfterImage]:
    """Turn an op list into a valid after-image stream with versions."""
    alive: Dict[Any, bool] = {}
    versions: Dict[Any, int] = {key: 0 for key in KEYS}
    images: List[AfterImage] = []
    for kind, key, value in ops:
        versions[key] += 1
        if kind == "delete":
            if not alive.get(key):
                versions[key] -= 1
                continue
            alive[key] = False
            images.append(AfterImage(key, versions[key], WriteKind.DELETE,
                                     None))
        else:
            alive[key] = True
            write_kind = WriteKind.INSERT if kind == "insert" else (
                WriteKind.UPDATE
            )
            images.append(AfterImage(
                key, versions[key], write_kind,
                {"_id": key, "v": value, "tag": value % 3},
            ))
    return images


def final_state(images: List[AfterImage]) -> Dict[Any, Dict[str, Any]]:
    state: Dict[Any, Dict[str, Any]] = {}
    for image in images:
        if image.is_delete:
            state.pop(image.key, None)
        else:
            state[image.key] = image.document
    return state


# -- filtering stage ----------------------------------------------------------


class TestFilteringStageInvariant:
    @given(operations, st.integers(0, 30))
    @settings(max_examples=120, deadline=None)
    def test_maintained_partition_equals_recomputation(self, ops, bound):
        query = Query({"v": {"$gte": bound}})
        node = FilteringNode(NodeCoordinates(0, 0))
        node.register_query(query, [], {}, now=0.0)
        for image in apply_operations(ops):
            node.process_write(image, now=0.0)
        maintained = {d["_id"] for d in node.result_partition(query.query_id)}
        expected = {
            key for key, doc in final_state(apply_operations(ops)).items()
            if doc["v"] >= bound
        }
        assert maintained == expected

    @given(operations, st.integers(0, 30), st.integers(0, 20))
    @settings(max_examples=60, deadline=None)
    def test_invariant_survives_mid_stream_subscription(self, ops, bound,
                                                        split):
        """Subscribe midway (with a bootstrap of the then-current state)
        and rely on retention replay for anything in flight."""
        query = Query({"v": {"$gte": bound}})
        node = FilteringNode(NodeCoordinates(0, 0))
        images = apply_operations(ops)
        split = min(split, len(images))
        pre, post = images[:split], images[split:]
        # Writes happen before the subscription exists.
        for image in pre:
            node.process_write(image, now=0.0)
        # The pull-based bootstrap reflects exactly the pre-writes.
        state = final_state(pre)
        bootstrap = [doc for doc in state.values() if doc["v"] >= bound]
        versions = {doc["_id"]: max(
            (img.version for img in pre if img.key == doc["_id"]), default=0
        ) for doc in bootstrap}
        node.register_query(query, bootstrap, versions, now=0.0)
        for image in post:
            node.process_write(image, now=0.0)
        maintained = {d["_id"] for d in node.result_partition(query.query_id)}
        expected = {
            key for key, doc in final_state(images).items()
            if doc["v"] >= bound
        }
        assert maintained == expected

    @given(operations, st.integers(0, 30))
    @settings(max_examples=60, deadline=None)
    def test_event_stream_is_well_formed(self, ops, bound):
        """add/remove alternate per key; change only between them."""
        query = Query({"v": {"$gte": bound}})
        node = FilteringNode(NodeCoordinates(0, 0))
        node.register_query(query, [], {}, now=0.0)
        in_result: Dict[Any, bool] = {}
        for image in apply_operations(ops):
            for event in node.process_write(image, now=0.0):
                if event.match_type is MatchType.ADD:
                    assert not in_result.get(event.key)
                    in_result[event.key] = True
                elif event.match_type is MatchType.CHANGE:
                    assert in_result.get(event.key)
                elif event.match_type is MatchType.REMOVE:
                    assert in_result.get(event.key)
                    in_result[event.key] = False


# -- 2D grid ------------------------------------------------------------------


class TestGridInvariant:
    @given(operations, st.integers(0, 30),
           st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_union_of_partitions_equals_recomputation(self, ops, bound,
                                                      qp_count, wp_count):
        """Run the same stream through a full QP x WP grid: the union of
        the responsible row's result partitions is the query result."""
        scheme = PartitioningScheme(qp_count, wp_count)
        query = Query({"v": {"$gte": bound}})
        nodes = {
            scheme.task_index(coordinates): FilteringNode(coordinates)
            for coordinates in scheme.all_nodes()
        }
        qp = scheme.query_partition_of(query.hash)
        for coordinates in scheme.nodes_for_query(query.hash):
            nodes[scheme.task_index(coordinates)].register_query(
                query, [], {}, now=0.0
            )
        for image in apply_operations(ops):
            for coordinates in scheme.nodes_for_write(image.key):
                nodes[scheme.task_index(coordinates)].process_write(
                    image, now=0.0
                )
        union = set()
        for coordinates in scheme.nodes_for_query(query.hash):
            node = nodes[scheme.task_index(coordinates)]
            partition = {
                d["_id"] for d in node.result_partition(query.query_id)
            }
            # Partitions are disjoint by construction.
            assert not (union & partition)
            union |= partition
        expected = {
            key for key, doc in final_state(apply_operations(ops)).items()
            if doc["v"] >= bound
        }
        assert union == expected


# -- sorting stage ------------------------------------------------------------


def drive_sorted_query(ops, limit, offset, slack):
    """Feed a filtering node + sorting node pipeline; renew on errors.

    Returns (visible_window_ids, expected_ids_from_recomputation).
    """
    query = Query({"tag": {"$lte": 2}}, sort=[("v", -1)], limit=limit,
                  offset=offset)
    filtering = FilteringNode(NodeCoordinates(0, 0))
    sorting = SortingNode()
    current: Dict[Any, Dict[str, Any]] = {}
    latest_version: Dict[Any, int] = {}

    def bootstrap() -> None:
        matching = [doc for doc in current.values() if doc["tag"] <= 2]
        rewritten = query.rewritten_for_subscription(slack)
        ordered = sorted(matching, key=query.sort.key)
        if rewritten.limit is not None:
            ordered = ordered[: rewritten.limit]
        versions = {
            doc["_id"]: latest_version.get(doc["_id"], 0) for doc in ordered
        }
        filtering.register_query(query, ordered, versions, now=0.0)
        sorting.register_query(query, ordered, versions, slack=slack)

    bootstrap()
    for image in apply_operations(ops):
        latest_version[image.key] = image.version
        if image.is_delete:
            current.pop(image.key, None)
        else:
            current[image.key] = image.document
        events = filtering.process_write(image, now=0.0)
        renew = False
        for event in events:
            for change in sorting.handle_event(event):
                if change.is_error:
                    renew = True
        if renew:
            bootstrap()
    state = sorting.state_of(query.query_id)
    visible = [] if state is None else [key for key, _ in state.visible()]
    matching = sorted(
        (doc for doc in current.values() if doc["tag"] <= 2),
        key=query.sort.key,
    )
    window = matching[offset:]
    if limit is not None:
        window = window[:limit]
    expected = [doc["_id"] for doc in window]
    return visible, expected


class TestSortingStageInvariant:
    @given(operations, st.integers(1, 5), st.integers(0, 3),
           st.integers(1, 6))
    @settings(max_examples=80, deadline=None)
    def test_visible_window_equals_recomputation(self, ops, limit, offset,
                                                 slack):
        visible, expected = drive_sorted_query(ops, limit, offset, slack)
        assert visible == expected

    @given(operations)
    @settings(max_examples=40, deadline=None)
    def test_unlimited_sorted_query_tracks_full_order(self, ops):
        visible, expected = drive_sorted_query(ops, limit=None, offset=0,
                                               slack=1)
        assert visible == expected
