"""Unit tests for the fault-injection layer (repro.runtime.faults).

The injector must be deterministic under a fixed seed and message
order — this is what makes the chaos suite reproducible — and each
fault kind must do exactly what its name says, at the layer it binds
to (broker channels or execution-model mailboxes).
"""

import pytest

from repro.errors import ExecutionConfigError, InjectedFaultError
from repro.event.broker import Broker
from repro.runtime.execution import (
    ExecutionConfig,
    InlineExecutionModel,
    ThreadedExecutionModel,
)
from repro.runtime.faults import (
    CHANNEL,
    MAILBOX,
    FaultInjector,
    FaultPlan,
    FaultRule,
)


class TestFaultRuleValidation:
    def test_unknown_scope_rejected(self):
        with pytest.raises(ExecutionConfigError):
            FaultRule("nope", "*", "drop")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExecutionConfigError):
            FaultRule("channel", "*", "explode")

    def test_probability_bounds(self):
        with pytest.raises(ExecutionConfigError):
            FaultRule("channel", "*", "drop", probability=1.5)

    def test_delay_kind_needs_positive_delay(self):
        with pytest.raises(ExecutionConfigError):
            FaultRule("mailbox", "*", "delay", delay=0.0)

    def test_config_rejects_non_plan(self):
        with pytest.raises(ExecutionConfigError):
            ExecutionConfig(fault_plan="not a plan")


class TestInjectorDecisions:
    def test_scripted_at_indices_fire_exactly(self):
        plan = FaultPlan().rule("mailbox", "box", "drop", at=[1, 3])
        injector = plan.build()
        drops = [
            injector.decide(MAILBOX, "box", i).drop for i in range(5)
        ]
        assert drops == [False, True, False, True, False]
        assert injector.dropped == 2

    def test_after_and_max_count_window(self):
        plan = FaultPlan().rule(
            "mailbox", "box", "drop", after=2, max_count=2
        )
        injector = plan.build()
        drops = [
            injector.decide(MAILBOX, "box", i).drop for i in range(6)
        ]
        assert drops == [False, False, True, True, False, False]

    def test_pattern_scopes_rule(self):
        plan = FaultPlan().rule("mailbox", "matching*", "drop")
        injector = plan.build()
        assert injector.decide(MAILBOX, "matching[3]", 0).drop
        assert not injector.decide(MAILBOX, "sorting[0]", 0).drop

    def test_duplicate_adds_copies(self):
        plan = FaultPlan().rule("channel", "*", "duplicate", copies=2)
        decision = plan.build().decide(CHANNEL, "c", 0)
        assert decision.copies == 3

    def test_corrupt_replaces_one_field(self):
        plan = FaultPlan(seed=5).rule("channel", "*", "corrupt")
        payload = {"kind": "write", "key": 1, "version": 2}
        decision = plan.build().decide(CHANNEL, "c", payload)
        assert decision.payload != payload
        assert payload == {"kind": "write", "key": 1, "version": 2}
        changed = [
            k for k in payload if decision.payload[k] != payload[k]
        ]
        assert len(changed) == 1

    def test_error_kind_flags_decision(self):
        plan = FaultPlan().rule("channel", "*", "error")
        assert plan.build().decide(CHANNEL, "c", 0).error

    def test_crash_rules_only_fire_via_crashes_task(self):
        plan = FaultPlan().rule("mailbox", "matching*", "crash")
        injector = plan.build()
        assert not injector.decide(MAILBOX, "matching[0]", 0).drop
        assert injector.crashes_task("matching[0]")
        assert not injector.crashes_task("sorting[0]")

    def test_disarm_stops_everything(self):
        plan = (FaultPlan()
                .rule("mailbox", "*", "drop")
                .rule("mailbox", "m*", "crash"))
        injector = plan.build()
        injector.disarm()
        assert injector.decide(MAILBOX, "box", 0).clean
        assert not injector.crashes_task("matching[0]")
        injector.arm()
        assert injector.decide(MAILBOX, "box", 0).drop

    def test_same_seed_same_schedule(self):
        def run(seed):
            injector = FaultPlan(seed=seed).rule(
                "mailbox", "*", "drop", probability=0.4
            ).build()
            return [
                injector.decide(MAILBOX, "box", i).drop for i in range(50)
            ]

        assert run(9) == run(9)
        assert run(9) != run(10)

    def test_stats_reports_rules_and_counters(self):
        injector = FaultPlan().rule("mailbox", "*", "drop").build()
        injector.decide(MAILBOX, "box", 0)
        snapshot = injector.stats()
        assert snapshot["injected"] == 1
        assert snapshot["dropped"] == 1
        assert snapshot["rules"][0]["fired"] == 1


class TestInlineModelFaults:
    def _model(self, plan, seed=1):
        return InlineExecutionModel(
            ExecutionConfig(mode="inline", seed=seed, fault_plan=plan)
        )

    def test_mailbox_drop(self):
        plan = FaultPlan().rule("mailbox", "box", "drop", at=[0, 2])
        model = self._model(plan)
        got = []
        box = model.mailbox("box", lambda batch: got.extend(batch))
        for i in range(4):
            box.put(i)
        assert model.drain()
        assert got == [1, 3]

    def test_mailbox_duplicate(self):
        plan = FaultPlan().rule("mailbox", "box", "duplicate", at=[1])
        model = self._model(plan)
        got = []
        box = model.mailbox("box", lambda batch: got.extend(batch))
        for i in range(3):
            box.put(i)
        assert model.drain()
        assert got == [0, 1, 1, 2]

    def test_mailbox_delay_is_virtual_and_released_by_drain(self):
        plan = FaultPlan().rule(
            "mailbox", "box", "delay", delay=3.0, at=[0]
        )
        model = self._model(plan)
        got = []
        box = model.mailbox("box", lambda batch: got.extend(batch))
        box.put("late")
        box.put("prompt")
        assert got == ["prompt"]  # the delayed item waits on the heap
        assert model.drain()
        assert got == ["prompt", "late"]
        assert model.virtual_now >= 3.0

    def test_put_direct_bypasses_faults(self):
        plan = FaultPlan().rule("mailbox", "box", "drop")
        model = self._model(plan)
        got = []
        box = model.mailbox("box", lambda batch: got.extend(batch))
        box.put("faulted")
        box.put_direct("direct")
        assert model.drain()
        assert got == ["direct"]

    def test_set_fault_injector_after_construction(self):
        model = InlineExecutionModel(ExecutionConfig(mode="inline"))
        got = []
        box = model.mailbox("box", lambda batch: got.extend(batch))
        model.set_fault_injector(
            FaultInjector(FaultPlan().rule("mailbox", "*", "drop"))
        )
        box.put(1)
        assert model.drain()
        assert got == []

    def test_stats_exposes_faults(self):
        plan = FaultPlan().rule("mailbox", "*", "drop")
        model = self._model(plan)
        box = model.mailbox("box", lambda batch: None)
        box.put(1)
        assert model.stats()["faults"]["dropped"] == 1


class TestThreadedModelFaults:
    def test_mailbox_drop_and_duplicate(self):
        plan = (FaultPlan()
                .rule("mailbox", "box", "drop", at=[0])
                .rule("mailbox", "box", "duplicate", at=[2]))
        model = ThreadedExecutionModel(ExecutionConfig(fault_plan=plan))
        try:
            got = []
            box = model.mailbox("box", lambda batch: got.extend(batch))
            for i in range(4):
                box.put(i)
            assert model.drain()
            # item 0 dropped; eligible index 2 (= item 3) duplicated.
            assert sorted(got) == [1, 2, 3, 3]
        finally:
            model.shutdown()

    def test_mailbox_delay_lands_after_wait(self):
        plan = FaultPlan().rule(
            "mailbox", "box", "delay", delay=0.05, at=[0]
        )
        model = ThreadedExecutionModel(ExecutionConfig(fault_plan=plan))
        try:
            got = []
            box = model.mailbox("box", lambda batch: got.extend(batch))
            box.put("late")
            assert model.drain(timeout=5.0)
            assert got == ["late"]
        finally:
            model.shutdown()


class TestBrokerChannelFaults:
    def _broker(self, plan, seed=1):
        model = InlineExecutionModel(
            ExecutionConfig(mode="inline", seed=seed, fault_plan=plan)
        )
        return Broker(execution=model), model

    def test_channel_drop(self):
        plan = FaultPlan().rule("channel", "writes.*", "drop", at=[1])
        broker, model = self._broker(plan)
        got = []
        broker.subscribe("writes.t", lambda c, p: got.append(p))
        for i in range(3):
            broker.publish("writes.t", i)
        assert broker.drain()
        assert got == [0, 2]
        broker.close()

    def test_channel_error_raises_at_publish_site(self):
        plan = FaultPlan().rule("channel", "*", "error", at=[0])
        broker, model = self._broker(plan)
        with pytest.raises(InjectedFaultError):
            broker.publish("c", 1)
        broker.publish("c", 2)  # next publish goes through
        broker.close()

    def test_channel_duplicate_delivers_copies(self):
        plan = FaultPlan().rule("channel", "*", "duplicate", at=[0])
        broker, model = self._broker(plan)
        got = []
        broker.subscribe("c", lambda c, p: got.append(p))
        broker.publish("c", "x")
        assert broker.drain()
        assert got == ["x", "x"]
        broker.close()

    def test_channel_corruption_still_wire_safe(self):
        plan = FaultPlan(seed=2).rule("channel", "*", "corrupt", at=[0])
        broker, model = self._broker(plan)
        got = []
        broker.subscribe("c", lambda c, p: got.append(p))
        broker.publish("c", {"a": 1, "b": 2})
        assert broker.drain()
        assert len(got) == 1 and got[0] != {"a": 1, "b": 2}
        broker.close()

    def test_unfaulted_channels_unaffected(self):
        plan = FaultPlan().rule("channel", "writes.*", "drop")
        broker, model = self._broker(plan)
        got = []
        broker.subscribe("queries.t", lambda c, p: got.append(p))
        broker.publish("queries.t", 1)
        assert broker.drain()
        assert got == [1]
        broker.close()
