"""Property tests: every delivered notification carries a full trace.

The write-path tracing contract (DESIGN.md §9): with telemetry enabled
and every write sampled, each notification a client materializes must
carry a trace whose span chain covers the pipeline —
``publish -> filter -> [sort] -> deliver -> materialize`` for write
notifications, ``publish -> [filter|sort] -> deliver -> materialize``
for subscription results — with every span closed and all timestamps
monotonically non-decreasing in pipeline order.  Hypothesis drives
arbitrary workloads through the deterministic inline model (including
a scripted PR 3 matching-node crash, so recovery replay traffic is
covered too) and a fixed workload exercises the threaded model under
wall-clock time.  Same-seed inline runs must produce byte-identical
trace transcripts.
"""

import json
import os
import signal
import socket
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.event.broker import Broker
from repro.obs.telemetry import TelemetryConfig
from repro.obs.tracing import STAGES, is_complete, span_names, spans_of
from repro.runtime.execution import (
    ExecutionConfig,
    InlineExecutionModel,
    ThreadedExecutionModel,
)
from repro.runtime.faults import FaultPlan


class SteppingClock:
    def __init__(self, start: float = 1000.0, step: float = 0.001):
        self.now = start
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def assert_valid_trace(notification, slack: float = 0.0) -> None:
    """One notification's trace is present, complete, ordered, monotone.

    ``slack`` loosens the cross-span monotonicity check by that many
    seconds: worker-side spans under ``execution_model="process"`` are
    stamped with a calibrated clock whose residual offset error is
    bounded by half the calibration round-trip, so adjacent spans from
    different processes may overlap by a few microseconds.
    """
    trace = notification.trace
    assert trace is not None, "notification arrived without a trace"
    assert is_complete(trace), f"open span in {trace}"
    names = span_names(trace)
    assert len(names) >= 4, f"expected >= 4 spans, got {names}"
    assert len(set(names)) == len(names), f"repeated stage in {names}"
    ranks = [STAGES.index(name) for name in names]  # unknown name raises
    assert ranks == sorted(ranks), f"stages out of pipeline order: {names}"
    assert names[0] == "publish" and names[-1] == "materialize"
    assert "deliver" in names
    # Monotonic timestamps: start <= end within a span, and nothing
    # starts before the previous span ended (modulo calibration slack).
    previous_end = trace["start"]
    for name, start, end in spans_of(trace):
        assert start >= previous_end - slack, \
            f"{name} starts before previous end"
        assert end >= start, f"{name} ends before it starts"
        previous_end = end


def assert_all_traced(*subscriptions, slack: float = 0.0) -> int:
    checked = 0
    for subscription in subscriptions:
        for notification in subscription.notifications:
            assert_valid_trace(notification, slack=slack)
            checked += 1
    return checked


operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.sampled_from(["insert", "update", "delete"]),
    ),
    min_size=1,
    max_size=20,
)


def apply_operation(app, live, step, key, op):
    if op == "insert":
        if key in live:
            app.update("items", key, {"$set": {"v": step}})
        else:
            app.insert("items", {"_id": key, "v": step})
            live.add(key)
    elif op == "update":
        if key in live:
            app.update("items", key, {"$set": {"v": step + 1000}})
    elif op == "delete":
        if key in live:
            app.delete("items", key)
            live.discard(key)


def run_workload(app, ops):
    live = set()
    for step, (key, op) in enumerate(ops):
        apply_operation(app, live, step, key, op)


@settings(max_examples=25, deadline=None)
@given(ops=operations, crash_at=st.one_of(
    st.none(), st.integers(min_value=1, max_value=15)))
def test_inline_notifications_carry_complete_span_chains(ops, crash_at):
    """Arbitrary inline workloads — optionally crashing one matching
    node mid-stream so supervised recovery replay is on the path —
    deliver only fully-traced notifications."""
    plan = None
    if crash_at is not None:
        plan = FaultPlan().rule("mailbox", "matching*", "crash",
                                at=[crash_at])
    model = InlineExecutionModel(
        ExecutionConfig(mode="inline", seed=11, fault_plan=plan)
    )
    broker = Broker(execution=model)
    config = InvaliDBConfig(
        query_partitions=2, write_partitions=2,
        retention_seconds=3600.0, clock=SteppingClock(),
        telemetry=TelemetryConfig(trace_sample_rate=1.0),
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("trace-prop", broker, config=config)
    try:
        flat = app.subscribe("items", {"v": {"$gte": 0}})
        top = app.subscribe("items", {}, sort=[("v", -1)], limit=3)
        assert broker.drain()
        run_workload(app, ops)
        assert broker.drain()
        assert_all_traced(flat, top)
        snap = cluster.snapshot()
        # Small workloads may end before the scripted crash point is
        # reached; when the crash did fire, recovery must have run.
        if snap["faults"]["crashes"] >= 1:
            assert snap["supervisor"]["restarts"] >= 1
    finally:
        app.close()
        cluster.stop()
        broker.close()
        model.shutdown()


def test_threaded_notifications_carry_complete_span_chains():
    """The same contract under real threads and wall-clock spans."""
    model = ThreadedExecutionModel(ExecutionConfig())
    broker = Broker(execution=model)
    config = InvaliDBConfig(
        query_partitions=2, write_partitions=2,
        telemetry=TelemetryConfig(trace_sample_rate=1.0),
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("trace-threaded", broker, config=config)
    try:
        flat = app.subscribe("items", {"v": {"$gte": 0}})
        top = app.subscribe("items", {}, sort=[("v", -1)], limit=5)
        assert broker.drain(timeout=10.0)
        for i in range(40):
            app.insert("items", {"_id": i, "v": i})
        for i in range(0, 40, 2):
            app.update("items", i, {"$set": {"v": i + 100}})
        for i in range(0, 40, 5):
            app.delete("items", i)
        assert broker.drain(timeout=10.0)
        assert assert_all_traced(flat, top) >= 40
    finally:
        app.close()
        cluster.stop()
        broker.close()


def test_threaded_crash_recovery_keeps_notifications_traced():
    """Crash one matching node under the threaded model: replayed
    writes still arrive fully traced (replay traces are freshly
    started by the supervisor, flagged ``replay``)."""
    import time

    plan = FaultPlan().rule("mailbox", "matching*", "crash", at=[20])
    model = ThreadedExecutionModel(ExecutionConfig(fault_plan=plan))
    broker = Broker(execution=model)
    config = InvaliDBConfig(
        query_partitions=2, write_partitions=2,
        retention_seconds=300.0, supervisor_backoff_base=0.01,
        telemetry=TelemetryConfig(trace_sample_rate=1.0),
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("trace-crash", broker, config=config)
    try:
        flat = app.subscribe("items", {"v": {"$gte": 0}})
        assert broker.drain(timeout=10.0)
        for i in range(40):
            app.insert("items", {"_id": i, "v": i})
        assert broker.drain(timeout=10.0)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            snap = cluster.snapshot()
            if snap["supervisor"]["restarts"] >= 1:
                break
            time.sleep(0.05)
        assert broker.drain(timeout=10.0)
        snap = cluster.snapshot()
        assert snap["supervisor"]["restarts"] >= 1
        assert snap["supervisor"]["replayed_writes"] >= 1
        assert_all_traced(flat)
    finally:
        app.close()
        cluster.stop()
        broker.close()


def transcript_bytes(seed: int) -> bytes:
    """Serialize one inline run's complete trace transcript."""
    model = InlineExecutionModel(ExecutionConfig(mode="inline", seed=seed))
    broker = Broker(execution=model)
    config = InvaliDBConfig(
        query_partitions=2, write_partitions=2,
        clock=SteppingClock(),
        telemetry=TelemetryConfig(trace_sample_rate=1.0,
                                  transcript_capacity=4096),
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("transcript", broker, config=config)
    try:
        flat = app.subscribe("items", {"v": {"$gte": 0}})
        top = app.subscribe("items", {}, sort=[("v", -1)], limit=5)
        assert broker.drain()
        for i in range(40):
            app.insert("items", {"_id": i, "v": (i * 7) % 23})
        for i in range(0, 40, 3):
            app.update("items", i, {"$inc": {"v": 100}})
        for i in range(0, 40, 8):
            app.delete("items", i)
        assert broker.drain()
        checked = assert_all_traced(flat, top)
        assert checked >= 40
        transcripts = list(cluster.telemetry.tracer.transcripts)
        assert len(transcripts) == checked
        return json.dumps(transcripts, sort_keys=True).encode()
    finally:
        app.close()
        cluster.stop()
        broker.close()
        model.shutdown()


@pytest.mark.parametrize("seed", [3, 11])
def test_same_seed_inline_runs_produce_identical_transcripts(seed):
    assert transcript_bytes(seed) == transcript_bytes(seed)


# --------------------------------------------------------------------------
# Process model: spans must survive the wire.  Worker-side stages run in
# forked processes whose perf_counter domain differs from the parent's;
# the pool calibrates a per-worker offset at fork, so merged chains stay
# monotone within a small slack (residual error <= calibration RTT / 2).

process_model = pytest.mark.skipif(
    not (hasattr(os, "fork") and hasattr(socket, "AF_UNIX")),
    reason="process model needs fork + AF_UNIX socketpairs",
)

#: Generous bound on calibration error for same-host socketpair pings.
CLOCK_SLACK = 0.005


def settle(cluster, broker, rounds: int = 4, timeout: float = 10.0):
    """Alternate broker and cluster drains until both report idle."""
    for _ in range(rounds):
        broker.drain(timeout)
        cluster.drain(timeout)


def process_cluster(**overrides):
    broker = Broker()
    kwargs = dict(
        query_partitions=2, write_partitions=2,
        execution_model="process", process_workers=2,
        notification_coalescing=False,
        telemetry=TelemetryConfig(trace_sample_rate=1.0),
    )
    kwargs.update(overrides)
    config = InvaliDBConfig(**kwargs)
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("trace-process", broker, config=config)
    return broker, cluster, app


@process_model
def test_process_notifications_carry_complete_span_chains():
    """The tracing contract of DESIGN.md §9 holds when matching and
    sorting cells live in forked worker processes: worker-side filter /
    sort spans ride the wire envelopes out, completed spans ride the
    REPLY frames back, and the merged chain is complete."""
    broker, cluster, app = process_cluster()
    try:
        flat = app.subscribe("items", {"v": {"$gte": 0}})
        top = app.subscribe("items", {}, sort=[("v", -1)], limit=5)
        settle(cluster, broker)
        for i in range(30):
            app.insert("items", {"_id": i, "v": i})
        for i in range(0, 30, 2):
            app.update("items", i, {"$set": {"v": i + 100}})
        for i in range(0, 30, 5):
            app.delete("items", i)
        settle(cluster, broker)
        assert assert_all_traced(flat, top, slack=CLOCK_SLACK) >= 30
        filtered = [n for n in flat.notifications
                    if "filter" in span_names(n.trace)]
        assert filtered, "no notification carried a worker-side filter span"
        sorted_spans = [n for n in top.notifications
                        if "sort" in span_names(n.trace)]
        assert sorted_spans, "no notification carried a worker-side sort span"
    finally:
        app.close()
        cluster.stop()
        broker.close()


@process_model
@settings(max_examples=5, deadline=None)
@given(ops=operations)
def test_process_span_chain_property(ops):
    """Hypothesis variant: arbitrary workloads through forked workers
    still deliver only fully-traced notifications."""
    broker, cluster, app = process_cluster()
    try:
        flat = app.subscribe("items", {"v": {"$gte": 0}})
        top = app.subscribe("items", {}, sort=[("v", -1)], limit=3)
        settle(cluster, broker)
        run_workload(app, ops)
        settle(cluster, broker)
        assert_all_traced(flat, top, slack=CLOCK_SLACK)
    finally:
        app.close()
        cluster.stop()
        broker.close()


@process_model
def test_process_worker_kill9_replay_keeps_traces():
    """kill -9 a matching worker: the supervisor restarts the cell in a
    fresh (freshly calibrated) worker and replays retained writes with
    replay-flagged traces — every notification stays fully traced."""
    broker, cluster, app = process_cluster(
        retention_seconds=300.0, supervisor_backoff_base=0.05,
    )
    try:
        flat = app.subscribe("items", {"v": {"$gte": 0}})
        settle(cluster, broker)
        for i in range(20):
            app.insert("items", {"_id": i, "v": i})
        settle(cluster, broker)
        victim = cluster._remote_cells[("matching", 0)].pid
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 8.0
        while time.monotonic() < deadline:
            if cluster.supervisor.stats()["restarts"] >= 1:
                break
            time.sleep(0.05)
        settle(cluster, broker)
        for i in range(20, 30):
            app.insert("items", {"_id": i, "v": i})
        settle(cluster, broker)
        snap = cluster.snapshot()
        assert snap["supervisor"]["restarts"] >= 1
        assert snap["supervisor"]["replayed_writes"] >= 1
        assert_all_traced(flat, slack=CLOCK_SLACK)
        transcripts = list(cluster.telemetry.tracer.transcripts)
        replayed = [t for t in transcripts if t.get("replay")]
        assert replayed, "no replay-flagged trace reached the transcript"
        for trace in replayed:
            assert "filter" in span_names(trace), \
                "replayed trace lost its worker-side filter span"
    finally:
        app.close()
        cluster.stop()
        broker.close()
