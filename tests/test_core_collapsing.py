"""Notification-collapsing tests (the Section 8.1 client extension)."""

import pytest

from repro.core.collapsing import NotificationCollapser, merge_match_types
from repro.types import ChangeNotification, MatchType

from tests.conftest import FakeClock


def notify(match_type, key=1, doc=None, sub="s1", index=None, old_index=None,
           error=None):
    return ChangeNotification(
        subscription_id=sub, query_id="q1", match_type=match_type, key=key,
        document=doc, index=index, old_index=old_index, error=error,
    )


class TestMergeRules:
    @pytest.mark.parametrize(
        "first,second,expected",
        [
            (MatchType.ADD, MatchType.CHANGE, MatchType.ADD),
            (MatchType.ADD, MatchType.CHANGE_INDEX, MatchType.ADD),
            (MatchType.ADD, MatchType.REMOVE, None),
            (MatchType.CHANGE, MatchType.CHANGE, MatchType.CHANGE),
            (MatchType.CHANGE, MatchType.CHANGE_INDEX,
             MatchType.CHANGE_INDEX),
            (MatchType.CHANGE_INDEX, MatchType.CHANGE,
             MatchType.CHANGE_INDEX),
            (MatchType.CHANGE, MatchType.REMOVE, MatchType.REMOVE),
            (MatchType.REMOVE, MatchType.ADD, MatchType.CHANGE),
            (MatchType.REMOVE, MatchType.CHANGE, MatchType.CHANGE),
        ],
    )
    def test_net_effect(self, first, second, expected):
        assert merge_match_types(first, second) is expected


class TestCollapser:
    def setup_method(self):
        self.clock = FakeClock()
        self.delivered = []
        self.collapser = NotificationCollapser(
            self.delivered.append, window_seconds=1.0, clock=self.clock
        )

    def test_hot_key_burst_collapses_to_one(self):
        for value in range(10):
            self.collapser.offer(
                notify(MatchType.CHANGE, doc={"_id": 1, "v": value})
            )
        count = self.collapser.flush()
        assert count == 1
        assert self.delivered[0].document == {"_id": 1, "v": 9}
        assert self.collapser.compression_ratio == 10.0

    def test_add_then_remove_cancels(self):
        self.collapser.offer(notify(MatchType.ADD, doc={"_id": 1}))
        self.collapser.offer(notify(MatchType.REMOVE))
        assert self.collapser.flush() == 0
        assert self.delivered == []

    def test_add_then_changes_stays_add_with_final_document(self):
        self.collapser.offer(notify(MatchType.ADD, doc={"_id": 1, "v": 0}))
        self.collapser.offer(notify(MatchType.CHANGE, doc={"_id": 1, "v": 5}))
        self.collapser.flush()
        assert self.delivered[0].match_type is MatchType.ADD
        assert self.delivered[0].document["v"] == 5

    def test_remove_then_add_becomes_change(self):
        self.collapser.offer(notify(MatchType.REMOVE, doc={"_id": 1, "v": 0}))
        self.collapser.offer(notify(MatchType.ADD, doc={"_id": 1, "v": 7}))
        self.collapser.flush()
        assert self.delivered[0].match_type is MatchType.CHANGE
        assert self.delivered[0].document["v"] == 7

    def test_distinct_keys_do_not_collapse(self):
        self.collapser.offer(notify(MatchType.CHANGE, key=1, doc={"_id": 1}))
        self.collapser.offer(notify(MatchType.CHANGE, key=2, doc={"_id": 2}))
        assert self.collapser.flush() == 2

    def test_distinct_subscriptions_do_not_collapse(self):
        self.collapser.offer(notify(MatchType.CHANGE, sub="a", doc={"_id": 1}))
        self.collapser.offer(notify(MatchType.CHANGE, sub="b", doc={"_id": 1}))
        assert self.collapser.flush() == 2

    def test_window_elapse_triggers_flush(self):
        self.collapser.offer(notify(MatchType.CHANGE, doc={"_id": 1, "v": 0}))
        self.clock.advance(2.0)
        # The next offer sees the lapsed window and flushes both.
        self.collapser.offer(notify(MatchType.CHANGE, key=2, doc={"_id": 2}))
        assert len(self.delivered) == 2

    def test_errors_bypass_the_buffer(self):
        self.collapser.offer(notify(MatchType.CHANGE, doc={"_id": 1}))
        self.collapser.offer(notify(MatchType.ERROR, error="renewal needed"))
        # The error is delivered immediately, before any flush.
        assert len(self.delivered) == 1
        assert self.delivered[0].is_error
        assert self.collapser.pending_count == 1

    def test_arrival_order_preserved_across_keys(self):
        for key in (3, 1, 2):
            self.collapser.offer(notify(MatchType.ADD, key=key,
                                        doc={"_id": key}))
        self.collapser.flush()
        assert [n.key for n in self.delivered] == [3, 1, 2]

    def test_preserves_old_index_of_first_transition(self):
        self.collapser.offer(notify(MatchType.CHANGE_INDEX, index=3,
                                    old_index=0, doc={"_id": 1}))
        self.collapser.offer(notify(MatchType.CHANGE_INDEX, index=5,
                                    old_index=3, doc={"_id": 1}))
        self.collapser.flush()
        merged = self.delivered[0]
        assert merged.old_index == 0 and merged.index == 5
