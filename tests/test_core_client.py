"""Client protocol tests: heartbeats, renewals, rate limits, tables."""

import time

import pytest

from repro.core.config import InvaliDBConfig
from repro.core.subscriptions import (
    QueryRegistration,
    SubscriptionRecord,
    SubscriptionTable,
)
from repro.errors import SubscriptionError
from repro.query.engine import Query
from repro.types import MatchType

from tests.conftest import settle


class TestSubscriptionTable:
    def make_record(self, sub_id="s1", filter_doc=None):
        return SubscriptionRecord(sub_id, Query(filter_doc or {"a": 1}), 0.0)

    def test_add_get_remove(self):
        table = SubscriptionTable()
        record = self.make_record()
        table.add(record)
        assert table.get("s1") is record
        assert "s1" in table and len(table) == 1
        assert table.remove("s1") is record
        assert table.get("s1") is None

    def test_duplicate_id_rejected(self):
        table = SubscriptionTable()
        table.add(self.make_record())
        with pytest.raises(SubscriptionError):
            table.add(self.make_record())

    def test_subscriptions_grouped_by_query(self):
        table = SubscriptionTable()
        table.add(self.make_record("s1"))
        table.add(self.make_record("s2"))
        table.add(self.make_record("s3", {"b": 2}))
        query_id = Query({"a": 1}).query_id
        assert len(table.subscriptions_for_query(query_id)) == 2
        assert table.query_is_shared(query_id)
        table.remove("s1")
        assert not table.query_is_shared(query_id)

    def test_record_remembers_query_hash(self):
        record = self.make_record()
        assert record.query_hash == record.query.hash


class TestQueryRegistration:
    def test_ttl_lifecycle(self):
        registration = QueryRegistration(Query({"a": 1}), now=0.0, ttl=10.0)
        registration.subscribe("app-1", now=0.0)
        assert registration.active
        assert registration.expire(now=5.0) == []
        assert registration.expire(now=11.0) == ["app-1"]
        assert not registration.active

    def test_extension_pushes_deadline(self):
        registration = QueryRegistration(Query({"a": 1}), now=0.0, ttl=10.0)
        registration.subscribe("app-1", now=0.0)
        assert registration.extend("app-1", now=8.0)
        assert registration.expire(now=11.0) == []

    def test_extension_for_unknown_server_is_ignored(self):
        """Footnote 3: not an error scenario."""
        registration = QueryRegistration(Query({"a": 1}), now=0.0, ttl=10.0)
        assert not registration.extend("ghost", now=0.0)

    def test_cancel(self):
        registration = QueryRegistration(Query({"a": 1}), now=0.0, ttl=10.0)
        registration.subscribe("app-1", now=0.0)
        registration.subscribe("app-2", now=0.0)
        registration.cancel("app-1")
        assert registration.app_servers == ["app-2"]


class TestHeartbeats:
    def test_heartbeats_arrive(self, broker, cluster_factory,
                               app_server_factory):
        cluster_factory(1, 1, heartbeat_interval=0.05, heartbeat_timeout=1.0)
        app = app_server_factory(
            config=InvaliDBConfig(heartbeat_interval=0.05,
                                  heartbeat_timeout=1.0)
        )
        app.subscribe("items", {"v": 1})
        deadline = time.monotonic() + 3.0
        while time.monotonic() < deadline and app.client.last_heartbeat is None:
            time.sleep(0.02)
        assert app.client.last_heartbeat is not None
        assert app.client.check_heartbeat()

    def test_heartbeat_timeout_terminates_subscriptions(self, broker,
                                                        cluster_factory,
                                                        app_server_factory):
        """Section 5.1: on missing heartbeats the app server terminates
        subscriptions with an error the client can handle."""
        cluster = cluster_factory(1, 1, heartbeat_interval=0.05,
                                  heartbeat_timeout=0.5)
        errors = []
        app = app_server_factory(
            config=InvaliDBConfig(heartbeat_interval=0.05,
                                  heartbeat_timeout=0.5)
        )
        subscription = app.subscribe("items", {"v": 1},
                                     on_error=errors.append)
        deadline = time.monotonic() + 3.0
        while time.monotonic() < deadline and app.client.last_heartbeat is None:
            time.sleep(0.02)
        # Simulate cluster failure: stop it, then let the timeout lapse.
        cluster.stop()
        assert not app.client.check_heartbeat(
            now=app.client.last_heartbeat + 10.0
        )
        assert subscription.closed
        assert errors and "heartbeat" in errors[0]


class TestRenewalRateLimit:
    def test_renewals_are_rate_limited(self, broker, cluster_factory,
                                       app_server_factory):
        """The poll frequency rate limit bounds database load from
        renewals (Section 5.2)."""
        from repro.core.client import _RenewalLimiter

        limiter = _RenewalLimiter(min_interval=10.0)
        assert limiter.allow("q", now=0.0)
        assert not limiter.allow("q", now=5.0)
        assert limiter.allow("q", now=10.1)
        assert limiter.allow("other", now=5.0)  # per-query budgets

    def test_renew_grows_slack(self, broker, cluster_factory,
                               app_server_factory):
        cluster = cluster_factory(1, 1, default_slack=2,
                                  renewal_slack_factor=2.0)
        app = app_server_factory(
            config=InvaliDBConfig(default_slack=2, renewal_slack_factor=2.0)
        )
        for index in range(10):
            app.insert("articles", {"_id": index, "year": index})
        settle(cluster, broker)
        subscription = app.subscribe("articles", {}, sort=[("year", -1)],
                                     limit=3)
        query_id = subscription.query.query_id
        assert app.client._slacks[query_id] == 2
        assert app.client.renew(query_id)
        assert app.client._slacks[query_id] == 4
        assert app.client.renew(query_id)
        assert app.client._slacks[query_id] == 8

    def test_renew_unknown_query(self, broker, cluster_factory,
                                 app_server_factory):
        cluster_factory(1, 1)
        app = app_server_factory()
        assert not app.client.renew("q-nope")


class TestClientLifecycle:
    def test_closed_client_rejects_subscribe(self, broker, cluster_factory,
                                             app_server_factory):
        cluster_factory(1, 1)
        app = app_server_factory()
        app.client.close()
        with pytest.raises(SubscriptionError):
            app.client.subscribe({"a": 1})

    def test_subscription_count(self, broker, cluster_factory,
                                app_server_factory):
        cluster_factory(1, 1)
        app = app_server_factory()
        sub = app.subscribe("items", {"a": 1})
        assert app.client.subscription_count == 1
        app.unsubscribe(sub)
        assert app.client.subscription_count == 0

    def test_local_result_materialization_with_indices(self):
        """RealTimeSubscription maintains order from index info."""
        from repro.core.client import RealTimeSubscription
        from repro.types import ChangeNotification, InitialResult

        query = Query({}, sort=[("r", 1)], limit=10)
        handle = RealTimeSubscription("s1", query)
        handle._deliver_initial(
            InitialResult("s1", query.query_id,
                          documents=[{"_id": "a", "r": 1},
                                     {"_id": "c", "r": 3}])
        )
        handle._deliver(ChangeNotification(
            subscription_id="s1", query_id=query.query_id,
            match_type=MatchType.ADD, key="b", document={"_id": "b", "r": 2},
            index=1,
        ))
        assert [d["_id"] for d in handle.result()] == ["a", "b", "c"]
        handle._deliver(ChangeNotification(
            subscription_id="s1", query_id=query.query_id,
            match_type=MatchType.CHANGE_INDEX, key="b",
            document={"_id": "b", "r": 9}, index=2, old_index=1,
        ))
        assert [d["_id"] for d in handle.result()] == ["a", "c", "b"]
        handle._deliver(ChangeNotification(
            subscription_id="s1", query_id=query.query_id,
            match_type=MatchType.REMOVE, key="a",
        ))
        assert [d["_id"] for d in handle.result()] == ["c", "b"]


class TestWireSafety:
    def test_compiled_regex_rejected_with_hint(self, broker, cluster_factory,
                                               app_server_factory):
        import re

        from repro.errors import SubscriptionError

        cluster_factory(1, 1)
        app = app_server_factory()
        with pytest.raises(SubscriptionError, match=r"\$regex"):
            app.subscribe("items", {"name": re.compile("^a")})

    def test_nested_unserializable_value_rejected(self, broker,
                                                  cluster_factory,
                                                  app_server_factory):
        from repro.errors import SubscriptionError

        cluster_factory(1, 1)
        app = app_server_factory()
        with pytest.raises(SubscriptionError, match="filter.a"):
            app.subscribe("items", {"a": {"$in": [object()]}})

    def test_string_regex_form_accepted(self, broker, cluster_factory,
                                        app_server_factory):
        cluster_factory(1, 1)
        app = app_server_factory()
        subscription = app.subscribe("items", {"name": {"$regex": "^a"}})
        assert subscription.initial is not None
