"""Baseline mechanism tests: poll-and-diff and log tailing."""

import pytest

from repro.baselines.log_tailing import LogTailingProvider
from repro.baselines.poll_and_diff import PollAndDiffProvider
from repro.baselines.capabilities import (
    CAPABILITY_ROWS,
    SYSTEMS,
    capability_table,
    system_class_table,
)
from repro.errors import QueryParseError
from repro.store.collection import Collection
from repro.store.oplog import StaleCursorError
from repro.types import MatchType


@pytest.fixture
def store():
    collection = Collection("test")
    for index in range(10):
        collection.insert({"_id": index, "v": index * 10})
    return collection


class TestPollAndDiff:
    def test_initial_result(self, store):
        provider = PollAndDiffProvider(store)
        subscription = provider.subscribe({"v": {"$gte": 50}})
        assert {d["_id"] for d in subscription.initial_result} == {5, 6, 7, 8, 9}

    def test_changes_invisible_until_poll(self, store):
        """Staleness bounded by the polling interval (Section 3.1)."""
        provider = PollAndDiffProvider(store)
        subscription = provider.subscribe({"v": {"$gte": 50}})
        store.insert({"_id": 100, "v": 99})
        assert subscription.change_count == 0  # not yet polled
        provider.poll_all()
        assert subscription.change_count == 1
        assert subscription.notifications[0].match_type is MatchType.ADD

    def test_diff_produces_all_match_types(self, store):
        provider = PollAndDiffProvider(store)
        subscription = provider.subscribe(
            {"v": {"$gte": 50}}, sort=[("v", -1)], limit=10
        )
        store.insert({"_id": 100, "v": 95})      # add
        store.update(9, {"$set": {"v": 55}})      # changeIndex (moved)
        store.update(8, {"$set": {"v": 81}})      # change at same position
        store.delete(5)                           # remove
        provider.poll_all()
        kinds = {n.match_type for n in subscription.notifications}
        assert MatchType.ADD in kinds
        assert MatchType.REMOVE in kinds
        assert MatchType.CHANGE_INDEX in kinds

    def test_poll_cost_scales_with_query_count(self, store):
        """The core poll-and-diff weakness: every active query re-executes
        on every poll."""
        provider = PollAndDiffProvider(store)
        for bound in range(20):
            provider.subscribe({"v": {"$gte": bound}})
        executed_before = provider.queries_executed
        provider.poll_all()
        assert provider.queries_executed - executed_before == 20

    def test_full_expressiveness_inherited(self, store):
        """Poll-and-diff supports sorted queries with limit AND offset."""
        provider = PollAndDiffProvider(store)
        subscription = provider.subscribe({}, sort=[("v", -1)], limit=3,
                                          offset=2)
        assert [d["_id"] for d in subscription.initial_result] == [7, 6, 5]

    def test_unsubscribe(self, store):
        provider = PollAndDiffProvider(store)
        subscription = provider.subscribe({"v": {"$gte": 0}})
        provider.unsubscribe(subscription)
        store.insert({"_id": 55, "v": 1})
        provider.poll_all()
        assert subscription.change_count == 0
        assert provider.subscription_count == 0


class TestLogTailing:
    def test_lag_free_push(self, store):
        provider = LogTailingProvider(store)
        subscription = provider.subscribe({"v": {"$gte": 50}})
        store.insert({"_id": 100, "v": 99})
        assert subscription.change_count == 1  # no polling needed
        provider.close()

    def test_match_transitions(self, store):
        provider = LogTailingProvider(store)
        subscription = provider.subscribe({"v": {"$gte": 50}})
        store.insert({"_id": 100, "v": 99})
        store.update(100, {"$set": {"v": 98}})
        store.update(100, {"$set": {"v": 1}})
        kinds = [n.match_type for n in subscription.notifications]
        assert kinds == [MatchType.ADD, MatchType.CHANGE, MatchType.REMOVE]
        provider.close()

    def test_processes_entire_write_stream(self, store):
        """The core log-tailing weakness: every oplog entry is processed
        regardless of relevance (C1 in the paper)."""
        provider = LogTailingProvider(store)
        provider.subscribe({"v": {"$gte": 10**9}})  # matches nothing
        for index in range(100, 150):
            store.insert({"_id": index, "v": 0})
        assert provider.entries_processed == 50
        provider.close()

    def test_no_ordered_queries(self, store):
        """Like Parse, log tailing rejects ordered real-time queries."""
        provider = LogTailingProvider(store)
        with pytest.raises(QueryParseError):
            provider.subscribe({}, sort=[("v", 1)])
        with pytest.raises(QueryParseError):
            provider.subscribe({}, limit=3)
        provider.close()

    def test_oplog_overrun_loses_changes(self):
        """A slow tailer on a capped oplog suffers a stale cursor — the
        real-world failure of log tailing under write pressure."""
        collection = Collection("small", oplog=None)
        collection.oplog.capacity = 10
        overruns = []
        provider = LogTailingProvider(collection, push=False,
                                      on_overrun=overruns.append)
        subscription = provider.subscribe({"v": {"$gte": 0}})
        for index in range(50):
            collection.insert({"_id": index, "v": index})
        provider.drain()
        assert overruns and isinstance(overruns[0], StaleCursorError)
        # Only the surviving window was processed: changes were LOST.
        assert subscription.change_count < 50

    def test_pull_mode_drain(self, store):
        provider = LogTailingProvider(store, push=False)
        subscription = provider.subscribe({"v": {"$gte": 50}})
        store.insert({"_id": 100, "v": 99})
        assert subscription.change_count == 0
        processed = provider.drain()
        assert processed == 1
        assert subscription.change_count == 1


class TestCapabilityTables:
    def test_every_row_covers_all_systems(self):
        for name, cells in CAPABILITY_ROWS.items():
            assert len(cells) == len(SYSTEMS), name

    def test_invalidb_column_all_positive(self):
        """Table 2: InvaliDB is the only column with every capability."""
        invalidb = SYSTEMS.index("InvaliDB (Baqend)")
        for name, cells in CAPABILITY_ROWS.items():
            assert cells[invalidb] is True, name

    def test_no_other_system_has_all_capabilities(self):
        for column, system in enumerate(SYSTEMS):
            if system == "InvaliDB (Baqend)":
                continue
            values = [cells[column] for cells in CAPABILITY_ROWS.values()]
            assert not all(value is True for value in values), system

    def test_capability_flags_match_implementations(self):
        """Table 2 columns for the systems we implement are probed from
        the actual classes, not hardcoded lore."""
        poll_idx = SYSTEMS.index("Poll-and-Diff (Meteor)")
        tail_idx = SYSTEMS.index("Log Tailing (Meteor)")
        assert CAPABILITY_ROWS["Scales With Write TP"][poll_idx] is (
            PollAndDiffProvider.scales_with_write_throughput
        )
        assert CAPABILITY_ROWS["Scales With Write TP"][tail_idx] is (
            LogTailingProvider.scales_with_write_throughput
        )
        assert CAPABILITY_ROWS["Lag-Free Notifications"][poll_idx] is (
            PollAndDiffProvider.lag_free
        )
        assert CAPABILITY_ROWS["Lag-Free Notifications"][tail_idx] is (
            LogTailingProvider.lag_free
        )

    def test_tables_render(self):
        table2 = capability_table()
        assert "InvaliDB" in table2 and "Offset" in table2
        table1 = system_class_table()
        assert "persistent collections" in table1
        assert "Stream Processing" in table1
