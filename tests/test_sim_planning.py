"""Capacity-planning tests."""

import math

import pytest

from repro.errors import SaturationError
from repro.sim.planning import CapacityPlan, headroom, plan_capacity


class TestPlanCapacity:
    def test_small_workload_fits_one_node(self):
        plan = plan_capacity(500, 300.0, sla_ms=30.0,
                             validation_duration=3.0)
        assert plan.matching_nodes == 1
        assert plan.utilization < 0.8
        assert not plan.predicted.exceeds(30.0)

    def test_paper_scale_workload(self):
        """29k queries at 1k ops/s needed 16 query partitions in the
        paper; the planner lands in the same region."""
        plan = plan_capacity(29_000, 1000.0, sla_ms=50.0,
                             validation_duration=3.0)
        assert 14 <= plan.query_partitions * plan.write_partitions <= 24

    def test_write_heavy_workload_grows_write_dimension(self):
        plan = plan_capacity(1000, 12_000.0, sla_ms=50.0,
                             validation_duration=3.0)
        assert plan.write_partitions > plan.query_partitions

    def test_query_heavy_workload_grows_query_dimension(self):
        plan = plan_capacity(20_000, 800.0, sla_ms=50.0,
                             validation_duration=3.0)
        assert plan.query_partitions >= plan.write_partitions

    def test_impossible_workload_raises(self):
        with pytest.raises(SaturationError):
            plan_capacity(10**7, 10**6, sla_ms=20.0, max_partitions=4)

    def test_invalid_workload_rejected(self):
        with pytest.raises(ValueError):
            plan_capacity(-1, 100.0)

    def test_describe_is_readable(self):
        plan = plan_capacity(500, 300.0, validation_duration=3.0)
        text = plan.describe()
        assert "query" in text and "write" in text and "p99" in text


class TestHeadroom:
    def test_headroom_factors_exceed_one_for_healthy_plan(self):
        plan = plan_capacity(1000, 500.0, sla_ms=50.0,
                             validation_duration=3.0)
        query_factor, write_factor = headroom(plan, 1000, 500.0)
        assert query_factor > 1.0
        assert write_factor > 1.0

    def test_write_headroom_is_inverse_utilization(self):
        plan = plan_capacity(1000, 500.0, sla_ms=50.0,
                             validation_duration=3.0)
        _, write_factor = headroom(plan, 1000, 500.0)
        assert write_factor == pytest.approx(1.0 / plan.utilization)

    def test_headroom_of_empty_workload_is_infinite(self):
        plan = CapacityPlan(1, 1, 0.0, plan_capacity(
            100, 100.0, validation_duration=2.0).predicted)
        query_factor, write_factor = headroom(plan, 0, 0.0)
        assert math.isinf(query_factor) and math.isinf(write_factor)
