"""Quaestor-style query cache tests."""

import time

import pytest

from repro.cache.query_cache import InvalidatingQueryCache

from tests.conftest import settle


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


@pytest.fixture
def stack(broker, cluster_factory, app_server_factory):
    cluster = cluster_factory(2, 2)
    app = app_server_factory()
    for index in range(20):
        app.insert("items", {"_id": index, "v": index})
    settle(cluster, broker)
    return cluster, app


class TestCaching:
    def test_miss_then_hit(self, broker, stack):
        cluster, app = stack
        cache = InvalidatingQueryCache(app)
        first = cache.find("items", {"v": {"$gte": 15}})
        second = cache.find("items", {"v": {"$gte": 15}})
        assert first == second
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        cache.close()

    def test_write_invalidates(self, broker, stack):
        cluster, app = stack
        cache = InvalidatingQueryCache(app)
        cache.find("items", {"v": {"$gte": 15}})
        assert cache.is_cached("items", {"v": {"$gte": 15}})
        app.insert("items", {"_id": 100, "v": 50})
        settle(cluster, broker)
        assert wait_for(
            lambda: not cache.is_cached("items", {"v": {"$gte": 15}})
        )
        assert cache.stats.invalidations >= 1
        # The next read re-executes and sees the new document.
        fresh = cache.find("items", {"v": {"$gte": 15}})
        assert any(d["_id"] == 100 for d in fresh)
        cache.close()

    def test_irrelevant_write_does_not_invalidate(self, broker, stack):
        cluster, app = stack
        cache = InvalidatingQueryCache(app)
        cache.find("items", {"v": {"$gte": 15}})
        app.insert("items", {"_id": 101, "v": 1})  # below the bound
        settle(cluster, broker)
        assert cache.is_cached("items", {"v": {"$gte": 15}})
        assert cache.stats.invalidations == 0
        cache.close()

    def test_refresh_on_invalidation(self, broker, stack):
        cluster, app = stack
        cache = InvalidatingQueryCache(app, refresh_on_invalidation=True)
        cache.find("items", {"v": {"$gte": 15}})
        app.insert("items", {"_id": 102, "v": 60})
        settle(cluster, broker)
        assert wait_for(lambda: cache.stats.refreshes >= 1)
        # Still cached AND fresh: the next find is a hit with new data.
        result = cache.find("items", {"v": {"$gte": 15}})
        assert any(d["_id"] == 102 for d in result)
        assert cache.stats.hits >= 1
        cache.close()

    def test_lru_eviction_bounds_entries(self, broker, stack):
        cluster, app = stack
        cache = InvalidatingQueryCache(app, max_entries=3)
        for bound in range(6):
            cache.find("items", {"v": {"$gte": bound}})
        assert cache.entry_count() == 3
        cache.close()

    def test_cached_sorted_query(self, broker, stack):
        cluster, app = stack
        cache = InvalidatingQueryCache(app)
        result = cache.find("items", {}, sort=[("v", -1)], limit=3)
        assert [d["_id"] for d in result] == [19, 18, 17]
        app.insert("items", {"_id": 200, "v": 99})
        settle(cluster, broker)
        assert wait_for(
            lambda: not cache.is_cached("items", {}, sort=[("v", -1)],
                                        limit=3)
        )
        fresh = cache.find("items", {}, sort=[("v", -1)], limit=3)
        assert [d["_id"] for d in fresh] == [200, 19, 18]
        cache.close()

    def test_hit_rate(self, broker, stack):
        cluster, app = stack
        cache = InvalidatingQueryCache(app)
        cache.find("items", {"v": 1})
        cache.find("items", {"v": 1})
        cache.find("items", {"v": 1})
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
        cache.close()
