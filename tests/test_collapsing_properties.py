"""Property test: collapsing preserves the net result.

Applying the collapsed notification stream to a materialized result
must produce exactly the same final membership and documents as
applying the raw stream — compression must never change semantics.
"""

from typing import Dict, List

from hypothesis import given, settings, strategies as st

from repro.core.collapsing import NotificationCollapser
from repro.types import ChangeNotification, MatchType


def apply_stream(notifications: List[ChangeNotification]) -> Dict:
    """Reference applier: membership + latest document per key."""
    state: Dict = {}
    for notification in notifications:
        if notification.match_type is MatchType.REMOVE:
            state.pop(notification.key, None)
        elif notification.document is not None:
            state[notification.key] = notification.document
    return state


def make_stream(ops) -> List[ChangeNotification]:
    """Turn (key, kind, value) triples into a *consistent* stream: adds
    only for absent keys, changes/removes only for present keys."""
    present = set()
    stream = []
    for key, kind, value in ops:
        if key in present:
            if kind == 0:
                match_type = MatchType.REMOVE
                present.discard(key)
                document = None
            else:
                match_type = (
                    MatchType.CHANGE if kind == 1 else MatchType.CHANGE_INDEX
                )
                document = {"_id": key, "v": value}
        else:
            match_type = MatchType.ADD
            present.add(key)
            document = {"_id": key, "v": value}
        stream.append(ChangeNotification(
            subscription_id="s", query_id="q", match_type=match_type,
            key=key, document=document,
        ))
    return stream


operations = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 2), st.integers(0, 50)),
    max_size=40,
)


class TestCollapsingEquivalence:
    @given(operations)
    @settings(max_examples=150, deadline=None)
    def test_collapsed_stream_preserves_final_state(self, ops):
        stream = make_stream(ops)
        delivered: List[ChangeNotification] = []
        collapser = NotificationCollapser(delivered.append,
                                          window_seconds=10**9)
        for notification in stream:
            collapser.offer(notification)
        collapser.flush()
        assert apply_stream(delivered) == apply_stream(stream)

    @given(operations)
    @settings(max_examples=100, deadline=None)
    def test_collapsing_never_inflates(self, ops):
        stream = make_stream(ops)
        delivered: List[ChangeNotification] = []
        collapser = NotificationCollapser(delivered.append,
                                          window_seconds=10**9)
        for notification in stream:
            collapser.offer(notification)
        collapser.flush()
        assert len(delivered) <= len(stream)
        # At most one notification per distinct key in one window.
        keys = [notification.key for notification in delivered]
        assert len(keys) == len(set(keys))
