"""Projection and distinct tests."""

import pytest

from repro.errors import QueryParseError
from repro.store.collection import Collection
from repro.store.projection import Projection, apply_projection


DOC = {
    "_id": 1,
    "title": "DB Fun",
    "year": 2018,
    "meta": {"pages": 12, "issn": "x-1", "tags": ["db", "fun"]},
    "authors": [
        {"name": "w", "affiliation": "baqend"},
        {"name": "n", "affiliation": "uhh"},
    ],
}


class TestInclusion:
    def test_top_level_fields(self):
        projected = Projection({"title": 1, "year": 1}).apply(DOC)
        assert projected == {"_id": 1, "title": "DB Fun", "year": 2018}

    def test_id_suppression(self):
        projected = Projection({"title": 1, "_id": 0}).apply(DOC)
        assert projected == {"title": "DB Fun"}

    def test_nested_path(self):
        projected = Projection({"meta.pages": 1}).apply(DOC)
        assert projected == {"_id": 1, "meta": {"pages": 12}}

    def test_path_through_array_of_documents(self):
        projected = Projection({"authors.name": 1, "_id": 0}).apply(DOC)
        assert projected == {"authors": [{"name": "w"}, {"name": "n"}]}

    def test_missing_path_yields_nothing(self):
        projected = Projection({"nope": 1}).apply(DOC)
        assert projected == {"_id": 1}


class TestExclusion:
    def test_top_level(self):
        projected = Projection({"meta": 0, "authors": 0}).apply(DOC)
        assert projected == {"_id": 1, "title": "DB Fun", "year": 2018}

    def test_nested(self):
        projected = Projection({"meta.issn": 0, "authors": 0}).apply(DOC)
        assert projected["meta"] == {"pages": 12, "tags": ["db", "fun"]}

    def test_exclusion_through_arrays(self):
        projected = Projection({"authors.affiliation": 0}).apply(DOC)
        assert projected["authors"] == [{"name": "w"}, {"name": "n"}]

    def test_id_only_exclusion(self):
        projected = Projection({"_id": 0}).apply(DOC)
        assert "_id" not in projected and projected["title"] == "DB Fun"


class TestValidation:
    def test_mixed_modes_rejected(self):
        with pytest.raises(QueryParseError):
            Projection({"a": 1, "b": 0})

    def test_id_exception_allowed(self):
        Projection({"a": 1, "_id": 0})  # must not raise

    def test_empty_projection_rejected(self):
        with pytest.raises(QueryParseError):
            Projection({})

    def test_bad_values_rejected(self):
        with pytest.raises(QueryParseError):
            Projection({"a": "yes"})

    def test_projection_does_not_mutate_source(self):
        source = {"_id": 1, "a": {"b": 1, "c": 2}}
        Projection({"a.b": 0}).apply(source)
        assert source["a"] == {"b": 1, "c": 2}


class TestFindIntegration:
    @pytest.fixture
    def books(self):
        collection = Collection("books")
        for index in range(5):
            collection.insert({
                "_id": index, "title": f"t{index}", "year": 2000 + index,
                "secret": "hidden", "tags": [f"tag{index % 2}", "common"],
            })
        return collection

    def test_find_with_projection(self, books):
        result = books.find({"year": {"$gte": 2003}},
                            projection={"title": 1})
        assert result == [{"_id": 3, "title": "t3"}, {"_id": 4, "title": "t4"}]

    def test_projection_after_sort_and_limit(self, books):
        result = books.find({}, sort=[("year", -1)], limit=2,
                            projection={"year": 1, "_id": 0})
        assert result == [{"year": 2004}, {"year": 2003}]

    def test_apply_projection_none_is_identity(self, books):
        docs = books.find({})
        assert apply_projection(docs, None) is docs

    def test_distinct_scalar(self, books):
        assert books.distinct("year") == [2000, 2001, 2002, 2003, 2004]

    def test_distinct_unrolls_arrays(self, books):
        assert books.distinct("tags") == ["common", "tag0", "tag1"]

    def test_distinct_with_filter(self, books):
        assert books.distinct("tags", {"year": {"$lt": 2001}}) == [
            "common", "tag0",
        ]

    def test_distinct_missing_field(self, books):
        assert books.distinct("nope") == []
