"""Unit tests for leaf query operators."""

import re

import pytest

from repro.errors import QueryParseError
from repro.query import operators as ops


class TestEq:
    def test_scalar_equality(self):
        assert ops.Eq(5).evaluate(5)
        assert ops.Eq(5).evaluate(5.0)
        assert not ops.Eq(5).evaluate(6)

    def test_cross_type_never_equal(self):
        assert not ops.Eq(5).evaluate("5")
        assert not ops.Eq(0).evaluate(False)
        assert not ops.Eq(1).evaluate(True)

    def test_null_equality(self):
        assert ops.Eq(None).evaluate(None)
        assert not ops.Eq(None).evaluate(0)

    def test_array_equality(self):
        assert ops.Eq([1, 2]).evaluate([1, 2])
        assert not ops.Eq([1, 2]).evaluate([2, 1])

    def test_document_equality_ignores_key_order(self):
        assert ops.Eq({"a": 1, "b": 2}).evaluate({"b": 2, "a": 1})


class TestComparisons:
    def test_gt_gte_lt_lte(self):
        assert ops.Gt(3).evaluate(4)
        assert not ops.Gt(3).evaluate(3)
        assert ops.Gte(3).evaluate(3)
        assert ops.Lt(3).evaluate(2)
        assert not ops.Lt(3).evaluate(3)
        assert ops.Lte(3).evaluate(3)

    def test_string_comparison(self):
        assert ops.Gt("apple").evaluate("banana")
        assert not ops.Gt("banana").evaluate("apple")

    def test_cross_type_comparison_never_matches(self):
        assert not ops.Gt(3).evaluate("zebra")
        assert not ops.Lt("m").evaluate(1)
        assert not ops.Gt(3).evaluate(True)

    def test_null_operand_rejected(self):
        with pytest.raises(QueryParseError):
            ops.Gt(None)

    def test_null_value_never_in_range(self):
        assert not ops.Gte(0).evaluate(None)


class TestIn:
    def test_membership(self):
        operator = ops.In([1, "two", None])
        assert operator.evaluate(1)
        assert operator.evaluate("two")
        assert operator.evaluate(None)
        assert not operator.evaluate(2)

    def test_regex_member(self):
        operator = ops.In([re.compile("^ab")])
        assert operator.evaluate("abc")
        assert not operator.evaluate("xabc")

    def test_requires_array(self):
        with pytest.raises(QueryParseError):
            ops.In("not-a-list")


class TestNegations:
    def test_ne(self):
        operator = ops.ne(5)
        assert isinstance(operator, ops.Negated)
        assert operator.inner.evaluate(5)
        assert not operator.inner.evaluate(6)

    def test_nin_canonical_differs_from_ne(self):
        assert ops.nin([1]).canonical() != ops.ne(1).canonical()


class TestMod:
    def test_basic(self):
        operator = ops.Mod([4, 0])
        assert operator.evaluate(8)
        assert not operator.evaluate(7)

    def test_float_values_truncate(self):
        assert ops.Mod([4, 0]).evaluate(8.0)

    def test_non_numeric_value(self):
        assert not ops.Mod([4, 0]).evaluate("8")
        assert not ops.Mod([2, 0]).evaluate(True)

    def test_invalid_operands(self):
        with pytest.raises(QueryParseError):
            ops.Mod([4])
        with pytest.raises(QueryParseError):
            ops.Mod([0, 1])
        with pytest.raises(QueryParseError):
            ops.Mod("nope")


class TestSize:
    def test_array_size(self):
        assert ops.Size(2).evaluate([1, 2])
        assert not ops.Size(2).evaluate([1])
        assert not ops.Size(2).evaluate("ab")

    def test_invalid_count(self):
        with pytest.raises(QueryParseError):
            ops.Size(-1)
        with pytest.raises(QueryParseError):
            ops.Size(True)


class TestAll:
    def test_all_values_present(self):
        operator = ops.All([1, 2])
        assert operator.evaluate([2, 1, 3])
        assert not operator.evaluate([1, 3])

    def test_scalar_matches_single_element_all(self):
        assert ops.All([5]).evaluate(5)
        assert not ops.All([5, 6]).evaluate(5)

    def test_requires_array_operand(self):
        with pytest.raises(QueryParseError):
            ops.All(5)


class TestRegex:
    def test_search_semantics(self):
        assert ops.Regex("bc").evaluate("abcd")
        assert not ops.Regex("^bc").evaluate("abcd")

    def test_case_insensitive_option(self):
        assert ops.Regex("abc", "i").evaluate("ABC")
        assert not ops.Regex("abc").evaluate("ABC")

    def test_non_string_value(self):
        assert not ops.Regex("1").evaluate(1)

    def test_invalid_pattern(self):
        with pytest.raises(QueryParseError):
            ops.Regex("(")

    def test_invalid_option(self):
        with pytest.raises(QueryParseError):
            ops.Regex("a", "q")

    def test_compiled_pattern(self):
        assert ops.Regex(re.compile("ab", re.IGNORECASE)).evaluate("AB")


class TestTypeOf:
    @pytest.mark.parametrize(
        "alias,value,expected",
        [
            ("string", "x", True),
            ("string", 1, False),
            ("int", 1, True),
            ("int", True, False),
            ("number", 1.5, True),
            ("number", True, False),
            ("bool", True, True),
            ("null", None, True),
            ("array", [1], True),
            ("object", {"a": 1}, True),
        ],
    )
    def test_aliases(self, alias, value, expected):
        assert ops.TypeOf(alias).evaluate(value) is expected

    def test_unknown_alias(self):
        with pytest.raises(QueryParseError):
            ops.TypeOf("decimal128")


class TestCanonicalForms:
    def test_equality_and_hash(self):
        assert ops.Eq(5) == ops.Eq(5)
        assert hash(ops.Eq(5)) == hash(ops.Eq(5))
        assert ops.Eq(5) != ops.Eq(6)
        assert ops.Eq(5) != ops.Gt(5)

    def test_in_canonical_is_order_independent(self):
        assert ops.In([1, 2, 3]).canonical() == ops.In([3, 1, 2]).canonical()

    def test_freeze_handles_nested_structures(self):
        frozen = ops.freeze({"a": [1, {"b": 2}]})
        assert isinstance(frozen, tuple)
        hash(frozen)  # must be hashable
