"""Unit tests for the execution substrate: queues, models, scheduling.

The bounded-queue tests exercise the shared FIFO primitive directly;
the model tests cover the threaded model's condition-variable
quiescence and the inline model's reproducible scheduling and
virtual-time delays.
"""

import threading

import pytest

from repro.errors import ExecutionConfigError, QueueOverflowError
from repro.runtime.execution import (
    ExecutionConfig,
    InlineExecutionModel,
    ThreadedExecutionModel,
    build_execution_model,
    resolve_execution_model,
)
from repro.runtime.queues import BackpressurePolicy, BoundedQueue


class TestBoundedQueue:
    def test_fifo_order_and_batched_dequeue(self):
        queue = BoundedQueue()
        queue.put_many(range(10))
        assert queue.get_batch(4) == [0, 1, 2, 3]
        assert queue.get_batch(100) == [4, 5, 6, 7, 8, 9]
        stats = queue.stats()
        assert stats["batches"] == 2
        assert stats["largest_batch"] == 6
        assert stats["high_water"] == 10

    def test_get_batch_never_waits_to_fill(self):
        queue = BoundedQueue()
        queue.put(1)
        # One item available: the consumer gets it immediately even
        # though max_batch is larger.
        assert queue.get_batch(64, timeout=0.01) == [1]
        assert queue.get_batch(64, timeout=0.01) == []

    def test_block_policy_applies_backpressure(self):
        queue = BoundedQueue(capacity=2, policy=BackpressurePolicy.BLOCK)
        queue.put_many([1, 2])
        released = threading.Event()

        def producer():
            queue.put(3)  # blocks until the consumer makes room
            released.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not released.wait(timeout=0.1)
        assert queue.get_batch(1) == [1]
        assert released.wait(timeout=2.0)
        assert queue.get_batch(10) == [2, 3]

    def test_drop_oldest_policy_sheds_load(self):
        queue = BoundedQueue(capacity=2,
                             policy=BackpressurePolicy.DROP_OLDEST)
        discarded = queue.put_many([1, 2, 3, 4])
        assert discarded == 2
        assert queue.get_batch(10) == [3, 4]
        assert queue.stats()["dropped"] == 2

    def test_error_policy_fails_fast(self):
        queue = BoundedQueue(capacity=1, policy=BackpressurePolicy.ERROR)
        queue.put(1)
        with pytest.raises(QueueOverflowError):
            queue.put(2)

    def test_put_on_closed_queue_discards(self):
        queue = BoundedQueue()
        queue.put(1)
        queue.close(drain=True)
        assert queue.put(2) == 1  # reported as discarded
        assert queue.get_batch(10) == [1]  # drained items still served
        assert queue.get_batch(10) is None  # then the exit signal

    def test_close_without_drain_discards_queued_items(self):
        queue = BoundedQueue()
        queue.put_many([1, 2, 3])
        assert queue.close(drain=False) == 3
        assert queue.get_batch(10) is None


class TestExecutionConfig:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ExecutionConfigError):
            ExecutionConfig(mode="fibers")

    def test_rejects_bad_capacity_and_batch(self):
        with pytest.raises(ExecutionConfigError):
            ExecutionConfig(queue_capacity=0)
        with pytest.raises(ExecutionConfigError):
            ExecutionConfig(max_batch=0)

    def test_coerces_backpressure_strings(self):
        config = ExecutionConfig(backpressure="drop_oldest")
        assert config.backpressure is BackpressurePolicy.DROP_OLDEST
        with pytest.raises(ExecutionConfigError):
            ExecutionConfig(backpressure="yolo")

    def test_build_and_resolve(self):
        assert isinstance(
            build_execution_model(ExecutionConfig(mode="inline")),
            InlineExecutionModel,
        )
        model, owned = resolve_execution_model(None)
        assert isinstance(model, ThreadedExecutionModel) and owned
        model.shutdown()
        shared = InlineExecutionModel()
        assert resolve_execution_model(shared) == (shared, False)
        with pytest.raises(ExecutionConfigError):
            resolve_execution_model(42)


class TestThreadedModel:
    def test_drain_waits_for_in_flight_batches(self):
        """drain() must cover items a handler is *currently* processing,
        not just queue emptiness."""
        model = ThreadedExecutionModel(ExecutionConfig(max_batch=8))
        gate = threading.Event()
        seen = []

        def handler(batch):
            gate.wait(timeout=5.0)
            seen.extend(batch)

        box = model.mailbox("slow", handler)
        try:
            box.put_many([1, 2, 3])
            assert not model.drain(timeout=0.1)  # handler still holds them
            gate.set()
            assert model.drain(timeout=5.0)
            assert sorted(seen) == [1, 2, 3]
        finally:
            model.shutdown()

    def test_drain_covers_handler_reentrancy(self):
        """A handler enqueuing follow-up work must extend quiescence."""
        model = ThreadedExecutionModel()
        hops = []

        def second(batch):
            hops.extend(batch)

        box2 = model.mailbox("second", second)

        def first(batch):
            for item in batch:
                box2.put(item + 1)

        box1 = model.mailbox("first", first)
        try:
            box1.put_many([1, 2, 3])
            assert model.drain(timeout=5.0)
            assert sorted(hops) == [2, 3, 4]
        finally:
            model.shutdown()

    def test_delayed_schedule_is_counted_by_drain(self):
        model = ThreadedExecutionModel()
        seen = []
        box = model.mailbox("late", seen.extend)
        try:
            model.schedule(box, "x", delay=0.05)
            assert model.drain(timeout=5.0)  # waits through the delay
            assert seen == ["x"]
        finally:
            model.shutdown()

    def test_call_later_fires_and_cancels(self):
        model = ThreadedExecutionModel()
        fired = threading.Event()
        try:
            handle = model.call_later(10.0, fired.set)
            handle.cancel()
            model.call_later(0.01, fired.set)
            assert fired.wait(timeout=2.0)
        finally:
            model.shutdown()

    def test_handler_error_does_not_kill_worker(self):
        model = ThreadedExecutionModel(ExecutionConfig(max_batch=1))
        seen = []

        def handler(batch):
            if batch[0] == "boom":
                raise RuntimeError("boom")
            seen.extend(batch)

        box = model.mailbox("fragile", handler)
        try:
            box.put("boom")
            box.put("ok")
            assert model.drain(timeout=5.0)
            assert seen == ["ok"]
            assert box.stats()["handler_errors"] == 1
        finally:
            model.shutdown()

    def test_stats_snapshot_shape(self):
        model = ThreadedExecutionModel(ExecutionConfig(max_batch=16))
        box = model.mailbox("a", lambda batch: None)
        try:
            box.put_many(range(5))
            model.drain(timeout=5.0)
            stats = model.stats()
            assert stats["mode"] == "threaded"
            assert stats["pending"] == 0
            assert stats["mailboxes"]["a"]["enqueued"] == 5
            assert stats["mailboxes"]["a"]["handled"] == 5
        finally:
            model.shutdown()


class TestInlineModel:
    def test_put_runs_cascade_synchronously(self):
        model = InlineExecutionModel()
        seen = []
        box2 = model.mailbox("b", seen.extend)
        box1 = model.mailbox("a", lambda batch: box2.put_many(
            [item * 10 for item in batch]
        ))
        box1.put(1)
        # No drain needed: the whole cascade ran on this thread.
        assert seen == [10]

    def test_reentrant_put_trampolines_instead_of_recursing(self):
        model = InlineExecutionModel()
        seen = []

        def handler(batch):
            for item in batch:
                seen.append(item)
                if item < 500:
                    box.put(item + 1)  # would blow the stack if recursive

        box = model.mailbox("loop", handler)
        box.put(0)
        assert seen == list(range(501))

    def test_same_seed_same_service_order(self):
        def run(seed):
            model = InlineExecutionModel(
                ExecutionConfig(mode="inline", seed=seed, max_batch=1)
            )
            order = []
            boxes = [
                model.mailbox(f"m{i}", lambda batch, i=i: order.append(i))
                for i in range(3)
            ]

            def feed(batch):
                for box in boxes:
                    box.put_many(["x", "y"])

            entry = model.mailbox("entry", feed)
            entry.put("go")
            return order

        assert run(42) == run(42)  # reproducible
        runs = {tuple(run(seed)) for seed in range(8)}
        assert len(runs) > 1  # the seed genuinely varies the order

    def test_delayed_item_waits_for_drain(self):
        model = InlineExecutionModel()
        seen = []
        box = model.mailbox("late", seen.extend)
        model.schedule(box, "delayed", delay=1.0)
        box.put("fast")
        assert seen == ["fast"]  # virtual time has not advanced
        assert model.drain()
        assert seen == ["fast", "delayed"]
        assert model.virtual_now >= 1.0

    def test_advance_releases_only_due_work(self):
        model = InlineExecutionModel()
        seen = []
        box = model.mailbox("late", seen.extend)
        model.schedule(box, "soon", delay=1.0)
        model.schedule(box, "later", delay=5.0)
        model.advance(2.0)
        assert seen == ["soon"]
        model.advance(5.0)
        assert seen == ["soon", "later"]

    def test_call_later_is_virtual_and_cancellable(self):
        model = InlineExecutionModel()
        fired = []
        model.call_later(1.0, lambda: fired.append("a"))
        handle = model.call_later(2.0, lambda: fired.append("b"))
        handle.cancel()
        assert model.drain()
        assert fired == ["a"]

    def test_delay_ordering_is_by_virtual_due_time(self):
        model = InlineExecutionModel()
        seen = []
        box = model.mailbox("late", seen.extend)
        model.schedule(box, "second", delay=2.0)
        model.schedule(box, "first", delay=1.0)
        assert model.drain()
        assert seen == ["first", "second"]

    def test_sources_are_pumped_during_drain(self):
        model = InlineExecutionModel()
        seen = []
        box = model.mailbox("sink", seen.extend)
        remaining = [3]

        def pump():
            if remaining[0] == 0:
                return None
            remaining[0] -= 1
            box.put(remaining[0])
            return True

        model.add_source("spout", pump)
        assert model.drain()
        assert seen == [2, 1, 0]

    def test_drop_oldest_policy_inline(self):
        """put_many enqueues the whole batch before the trampoline runs,
        so a bounded inline mailbox really does shed load."""
        model = InlineExecutionModel()
        held = []
        shed = model.mailbox("shed", held.extend, capacity=2,
                             policy="drop_oldest")
        shed.put_many([1, 2, 3, 4])
        assert held == [3, 4]
        assert shed.stats()["dropped"] == 2

    def test_error_policy_inline_fails_fast(self):
        model = InlineExecutionModel()
        strict = model.mailbox("strict", lambda batch: None, capacity=1,
                               policy="error")
        with pytest.raises(QueueOverflowError):
            strict.put_many(["a", "b"])

    def test_overflow_inside_handler_is_contained(self):
        """An ERROR-policy overflow raised *inside* a handler counts as
        a handler error instead of killing the scheduler — mirroring
        the threaded model's containment."""
        model = InlineExecutionModel()
        strict = model.mailbox("strict", lambda batch: None, capacity=1,
                               policy="error")

        def overfill(batch):
            strict.put("a")
            strict.put("b")  # overflows while "a" is still queued

        entry = model.mailbox("entry", overfill)
        entry.put("go")  # must not raise
        assert entry.stats()["handler_errors"] == 1

    def test_stats_snapshot_shape(self):
        model = InlineExecutionModel(ExecutionConfig(mode="inline", seed=1))
        box = model.mailbox("a", lambda batch: None)
        box.put_many([1, 2, 3])
        stats = model.stats()
        assert stats["mode"] == "inline"
        assert stats["pending"] == 0
        assert stats["mailboxes"]["a"]["handled"] == 3
        model.schedule(box, 4, delay=1.0)
        assert model.stats()["delayed"] == 1
