"""Write stream retention and staleness avoidance tests."""

from repro.core.retention import RetentionBuffer
from repro.types import AfterImage, WriteKind


def image(key, version, timestamp=0.0, deleted=False):
    return AfterImage(
        key=key,
        version=version,
        kind=WriteKind.DELETE if deleted else WriteKind.UPDATE,
        document=None if deleted else {"_id": key, "v": version},
        timestamp=timestamp,
    )


class TestStalenessAvoidance:
    def test_newer_version_accepted(self):
        buffer = RetentionBuffer(5.0)
        assert buffer.observe(image("a", 1), now=0.0)
        assert buffer.observe(image("a", 2), now=0.0)

    def test_stale_version_rejected(self):
        """Section 5.1: an after-image is ignored whenever a more recent
        version for the same item has already been received."""
        buffer = RetentionBuffer(5.0)
        buffer.observe(image("a", 3), now=0.0)
        assert not buffer.observe(image("a", 2), now=0.0)
        assert not buffer.observe(image("a", 3), now=0.0)

    def test_delete_supersedes_earlier_update(self):
        buffer = RetentionBuffer(5.0)
        buffer.observe(image("a", 2, deleted=True), now=0.0)
        assert not buffer.observe(image("a", 1), now=0.0)

    def test_is_stale_does_not_record(self):
        buffer = RetentionBuffer(5.0)
        assert not buffer.is_stale(image("a", 1))
        assert not buffer.is_stale(image("a", 1))  # still unknown

    def test_versions_survive_eviction(self):
        """Staleness checks keep working after the after-image aged out
        of the replay window."""
        buffer = RetentionBuffer(1.0)
        buffer.observe(image("a", 5, timestamp=0.0), now=0.0)
        buffer.evict(now=10.0)
        assert len(buffer) == 0
        assert not buffer.observe(image("a", 4, timestamp=10.0), now=10.0)
        assert buffer.latest_version("a") == 5


class TestEvictionAndReplay:
    def test_eviction_by_age(self):
        buffer = RetentionBuffer(2.0)
        buffer.observe(image("old", 1, timestamp=0.0), now=0.0)
        buffer.observe(image("new", 1, timestamp=3.0), now=3.0)
        evicted = buffer.evict(now=4.0)
        assert evicted == 1
        assert [a.key for a in buffer] == ["new"]

    def test_replay_returns_only_window(self):
        buffer = RetentionBuffer(2.0)
        buffer.observe(image("old", 1, timestamp=0.0), now=0.0)
        buffer.observe(image("fresh", 1, timestamp=9.0), now=9.0)
        replayed = buffer.replay(now=10.0)
        assert [a.key for a in replayed] == ["fresh"]

    def test_only_latest_version_per_key_retained(self):
        buffer = RetentionBuffer(10.0)
        buffer.observe(image("a", 1, timestamp=0.0), now=0.0)
        buffer.observe(image("a", 2, timestamp=1.0), now=1.0)
        replayed = buffer.replay(now=2.0)
        assert len(replayed) == 1
        assert replayed[0].version == 2

    def test_zero_retention_replays_nothing(self):
        buffer = RetentionBuffer(0.0)
        buffer.observe(image("a", 1, timestamp=0.0), now=0.0)
        assert buffer.replay(now=0.5) == []
