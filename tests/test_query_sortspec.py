"""Sort specification and BSON value-ordering tests."""

import pytest

from repro.errors import SortSpecError
from repro.query.sortspec import (
    SortSpec,
    compare_documents,
    compare_values,
    document_sort_key,
    type_bracket,
)


class TestValueOrdering:
    def test_numbers_compare_numerically(self):
        assert compare_values(1, 2) < 0
        assert compare_values(2.5, 2) > 0
        assert compare_values(3, 3.0) == 0

    def test_type_bracket_order(self):
        # null < numbers < strings < objects < arrays < booleans
        ordered = [None, 0, "", {}, [], False]
        for earlier, later in zip(ordered, ordered[1:]):
            assert compare_values(earlier, later) < 0

    def test_bool_is_not_a_number(self):
        assert type_bracket(True) != type_bracket(1)
        assert compare_values(True, 1) > 0  # booleans sort after numbers

    def test_string_order(self):
        assert compare_values("a", "b") < 0

    def test_array_order_elementwise_then_length(self):
        assert compare_values([1, 2], [1, 3]) < 0
        assert compare_values([1, 2], [1, 2, 0]) < 0
        assert compare_values([2], [1, 9, 9]) > 0

    def test_object_order(self):
        assert compare_values({"a": 1}, {"a": 2}) < 0
        assert compare_values({"a": 1}, {"b": 1}) < 0
        assert compare_values({"a": 1}, {"a": 1, "b": 1}) < 0

    def test_false_before_true(self):
        assert compare_values(False, True) < 0

    def test_unsupported_type(self):
        with pytest.raises(SortSpecError):
            type_bracket(object())


class TestSortSpec:
    def test_primary_key_appended_as_tiebreak(self):
        spec = SortSpec([("year", -1)])
        assert spec.fields == (("year", -1), ("_id", 1))

    def test_explicit_primary_key_not_duplicated(self):
        spec = SortSpec([("_id", -1)])
        assert spec.fields == (("_id", -1),)

    def test_coerce_from_dict(self):
        spec = SortSpec.coerce({"year": -1, "title": 1})
        assert spec.fields[:2] == (("year", -1), ("title", 1))

    def test_invalid_direction(self):
        with pytest.raises(SortSpecError):
            SortSpec([("a", 2)])

    def test_empty_spec(self):
        with pytest.raises(SortSpecError):
            SortSpec([])

    def test_duplicate_field(self):
        with pytest.raises(SortSpecError):
            SortSpec([("a", 1), ("a", -1)])

    def test_sort_descending_with_tiebreak(self):
        docs = [
            {"_id": 3, "year": 2017},
            {"_id": 1, "year": 2018},
            {"_id": 2, "year": 2018},
        ]
        ordered = SortSpec([("year", -1)]).sort(docs)
        assert [d["_id"] for d in ordered] == [1, 2, 3]

    def test_multi_attribute_sort(self):
        docs = [
            {"_id": 1, "year": 2018, "title": "b"},
            {"_id": 2, "year": 2018, "title": "a"},
            {"_id": 3, "year": 2019, "title": "z"},
        ]
        ordered = SortSpec([("year", -1), ("title", 1)]).sort(docs)
        assert [d["_id"] for d in ordered] == [3, 2, 1]

    def test_missing_field_sorts_first_ascending(self):
        docs = [{"_id": 1, "x": 5}, {"_id": 2}]
        ordered = SortSpec([("x", 1)]).sort(docs)
        assert [d["_id"] for d in ordered] == [2, 1]

    def test_missing_field_sorts_last_descending(self):
        docs = [{"_id": 1, "x": 5}, {"_id": 2}]
        ordered = SortSpec([("x", -1)]).sort(docs)
        assert [d["_id"] for d in ordered] == [1, 2]

    def test_compare_is_antisymmetric(self):
        spec = [("year", -1)]
        a = {"_id": 1, "year": 2018}
        b = {"_id": 2, "year": 2017}
        assert compare_documents(a, b, spec) == -compare_documents(b, a, spec)

    def test_sort_key_orders_like_compare(self):
        spec = [("year", -1), ("title", 1)]
        docs = [
            {"_id": index, "year": 2015 + index % 4, "title": chr(97 + index % 5)}
            for index in range(20)
        ]
        by_key = sorted(docs, key=lambda d: document_sort_key(d, spec))
        import functools

        by_cmp = sorted(
            docs,
            key=functools.cmp_to_key(
                lambda a, b: compare_documents(a, b, spec)
            ),
        )
        assert by_key == by_cmp

    def test_equality_and_hash(self):
        assert SortSpec([("a", 1)]) == SortSpec([("a", 1)])
        assert hash(SortSpec([("a", 1)])) == hash(SortSpec([("a", 1)]))
        assert SortSpec([("a", 1)]) != SortSpec([("a", -1)])

    def test_mixed_type_values_sort_by_bracket(self):
        docs = [
            {"_id": 1, "v": "text"},
            {"_id": 2, "v": 10},
            {"_id": 3, "v": None},
            {"_id": 4, "v": True},
            {"_id": 5, "v": [1]},
        ]
        ordered = SortSpec([("v", 1)]).sort(docs)
        assert [d["_id"] for d in ordered] == [3, 2, 1, 5, 4]
