"""Sorting-stage tests: ordered windows, offset/limit/slack, renewal.

Recreates the paper's Figure 3 scenario: articles sorted by year
descending with OFFSET 2 LIMIT 3, maintained incrementally with
auxiliary data (offset items + slack beyond limit).

Every test in this module runs twice — once against the incremental
O(log W) path and once against the legacy snapshot-diff path — via the
autouse ``sorting_mode`` fixture, asserting both implementations honor
the same window semantics.
"""

import pytest

from repro.core import sorting
from repro.core.filtering import MatchEvent
from repro.core.sorting import SortingNode
from repro.query.engine import Query
from repro.types import MatchType


@pytest.fixture(autouse=True, params=["incremental", "legacy"])
def sorting_mode(request, monkeypatch):
    """Run the module's tests under both window-maintenance paths."""
    if request.param == "legacy":
        original = sorting.SortingNode.__init__

        def legacy_init(self, *args, **kwargs):
            kwargs.setdefault("incremental", False)
            original(self, *args, **kwargs)

        monkeypatch.setattr(sorting.SortingNode, "__init__", legacy_init)
    return request.param


ARTICLES = [
    {"_id": 5, "title": "DB Fun", "year": 2018},
    {"_id": 8, "title": "No SQL!", "year": 2018},
    {"_id": 3, "title": "BaaS For Dummies", "year": 2017},
    {"_id": 4, "title": "Query Languages", "year": 2017},
    {"_id": 7, "title": "Streams in Action", "year": 2016},
    {"_id": 9, "title": "SaaS For Dummies", "year": 2016},
    {"_id": 11, "title": "Even Older", "year": 2015},
]


def figure3_query(limit=3, offset=2):
    return Query({}, collection="articles", sort=[("year", -1)],
                 limit=limit, offset=offset)


def event(query, match_type, doc=None, key=None, version=1):
    return MatchEvent(
        query_id=query.query_id,
        match_type=match_type,
        key=key if key is not None else doc["_id"],
        document=doc,
        version=version,
        timestamp=0.0,
        needs_sorting=True,
    )


def register(node, query, documents, slack=2):
    """Register with the rewritten bootstrap (top offset+limit+slack)."""
    rewritten = query.rewritten_for_subscription(slack)
    sort = query.sort
    bootstrap = sorted(documents, key=sort.key)
    if rewritten.limit is not None:
        bootstrap = bootstrap[: rewritten.limit]
    versions = {doc["_id"]: 1 for doc in bootstrap}
    return node.register_query(query, bootstrap, versions, slack=slack)


def visible_ids(node, query):
    return [key for key, _ in node.state_of(query.query_id).visible()]


class TestBootstrapWindow:
    def test_figure3_initial_window(self):
        node = SortingNode()
        query = figure3_query()
        register(node, query, ARTICLES)
        # offset 2 skips the two 2018 articles; result = ids 3, 4, 7.
        assert visible_ids(node, query) == [3, 4, 7]

    def test_initial_registration_emits_nothing(self):
        node = SortingNode()
        changes = register(node, figure3_query(), ARTICLES)
        assert changes == []

    def test_short_result_marks_complete_knowledge(self):
        node = SortingNode()
        query = figure3_query()
        register(node, query, ARTICLES[:3])
        assert node.state_of(query.query_id).complete

    def test_full_window_is_incomplete(self):
        node = SortingNode()
        query = figure3_query()
        register(node, query, ARTICLES)  # 7 docs = offset+limit+slack
        assert not node.state_of(query.query_id).complete


class TestOffsetDynamics:
    def test_removal_from_offset_shifts_window(self):
        """Figure 3's narrative: deleting 'No SQL!' (id 8, offset) moves
        'BaaS For Dummies' into the offset and pulls 'SaaS For Dummies'
        (id 9) into the result."""
        node = SortingNode()
        query = figure3_query()
        register(node, query, ARTICLES)
        changes = node.handle_event(event(query, MatchType.REMOVE, key=8,
                                          version=2))
        assert visible_ids(node, query) == [4, 7, 9]
        kinds = {(c.match_type, c.key) for c in changes}
        assert (MatchType.REMOVE, 3) in kinds  # slid into the offset
        assert (MatchType.ADD, 9) in kinds  # slid in from beyond limit

    def test_insert_into_offset_shifts_window_back(self):
        """Adding an article above the offset pushes the last offset item
        into the result and the last result item beyond the limit."""
        node = SortingNode()
        query = figure3_query()
        register(node, query, ARTICLES)
        newest = {"_id": 1, "title": "Brand New", "year": 2019}
        changes = node.handle_event(event(query, MatchType.ADD, newest))
        assert visible_ids(node, query) == [8, 3, 4]
        kinds = {(c.match_type, c.key) for c in changes}
        assert (MatchType.ADD, 8) in kinds
        assert (MatchType.REMOVE, 7) in kinds


class TestLimitDynamics:
    def test_add_inside_result_pushes_last_out(self):
        node = SortingNode()
        query = Query({}, sort=[("year", -1)], limit=2)
        register(node, query, ARTICLES, slack=2)
        assert visible_ids(node, query) == [5, 8]
        doc = {"_id": 2, "title": "Mid", "year": 2019}
        changes = node.handle_event(event(query, MatchType.ADD, doc))
        assert visible_ids(node, query) == [2, 5]
        kinds = {(c.match_type, c.key) for c in changes}
        assert (MatchType.ADD, 2) in kinds
        assert (MatchType.REMOVE, 8) in kinds

    def test_remove_pulls_next_in(self):
        node = SortingNode()
        query = Query({}, sort=[("year", -1)], limit=2)
        register(node, query, ARTICLES, slack=2)
        changes = node.handle_event(event(query, MatchType.REMOVE, key=5,
                                          version=2))
        assert visible_ids(node, query) == [8, 3]
        assert any(
            c.match_type is MatchType.ADD and c.key == 3 for c in changes
        )

    def test_change_index_within_window(self):
        node = SortingNode()
        query = Query({}, sort=[("year", -1)], limit=4)
        register(node, query, ARTICLES, slack=2)
        # id 4 moves from 2017 to 2019: it jumps to the front.
        moved = {"_id": 4, "title": "Query Languages", "year": 2019}
        changes = node.handle_event(event(query, MatchType.CHANGE, moved,
                                          version=2))
        assert visible_ids(node, query)[0] == 4
        assert [c.match_type for c in changes] == [MatchType.CHANGE_INDEX]
        assert changes[0].old_index == 3 and changes[0].index == 0

    def test_change_in_place_keeps_position(self):
        node = SortingNode()
        query = Query({}, sort=[("year", -1)], limit=3)
        register(node, query, ARTICLES, slack=2)
        retitled = {"_id": 8, "title": "Renamed", "year": 2018}
        changes = node.handle_event(event(query, MatchType.CHANGE, retitled,
                                          version=2))
        assert [c.match_type for c in changes] == [MatchType.CHANGE]
        assert changes[0].index == changes[0].old_index == 1

    def test_add_beyond_horizon_is_ignored(self):
        node = SortingNode()
        query = Query({}, sort=[("year", -1)], limit=2)
        register(node, query, ARTICLES, slack=1)  # window of 3
        ancient = {"_id": 99, "title": "Ancient", "year": 1990}
        changes = node.handle_event(event(query, MatchType.ADD, ancient))
        assert changes == []
        assert len(node.state_of(query.query_id).entries) == 3

    def test_add_grows_slack_when_incomplete_but_below_capacity(self):
        node = SortingNode()
        query = Query({}, sort=[("year", -1)], limit=2)
        register(node, query, ARTICLES, slack=3)  # capacity 5, 5 known
        state = node.state_of(query.query_id)
        node.handle_event(event(query, MatchType.REMOVE, key=7, version=2))
        assert state.current_slack() == 2
        fresh = {"_id": 50, "year": 2018, "title": "x"}
        node.handle_event(event(query, MatchType.ADD, fresh))
        assert state.current_slack() == 3


class TestMaintenanceErrors:
    def test_slack_exhaustion_triggers_error(self):
        """Section 5.2: when the slack reaches zero, a removal renders
        the query unmaintainable -> error notification doubling as a
        query renewal request."""
        node = SortingNode()
        query = Query({}, sort=[("year", -1)], limit=5)
        register(node, query, ARTICLES, slack=2)  # knows all 7, capacity 7
        # Three removals: slack 2 -> 1 -> 0 -> error.
        first = node.handle_event(event(query, MatchType.REMOVE, key=5,
                                        version=2))
        second = node.handle_event(event(query, MatchType.REMOVE, key=8,
                                         version=2))
        third = node.handle_event(event(query, MatchType.REMOVE, key=3,
                                        version=2))
        assert not any(c.is_error for c in first + second)
        assert len(third) == 1 and third[0].is_error
        # The query is deactivated until renewal.
        assert node.state_of(query.query_id) is None

    def test_complete_knowledge_never_errors(self):
        node = SortingNode()
        query = Query({}, sort=[("year", -1)], limit=5)
        register(node, query, ARTICLES[:3], slack=2)  # complete
        for key in (5, 8, 3):
            changes = node.handle_event(
                event(query, MatchType.REMOVE, key=key, version=2)
            )
            assert not any(c.is_error for c in changes)
        assert visible_ids(node, query) == []

    def test_events_after_deactivation_are_dropped(self):
        node = SortingNode()
        query = Query({}, sort=[("year", -1)], limit=5)
        register(node, query, ARTICLES, slack=1)
        node.handle_event(event(query, MatchType.REMOVE, key=5, version=2))
        error = node.handle_event(event(query, MatchType.REMOVE, key=8,
                                        version=2))
        assert error and error[0].is_error
        late = node.handle_event(event(query, MatchType.REMOVE, key=3,
                                       version=2))
        assert late == []


class TestRenewal:
    def test_renewal_emits_delta_from_last_valid_window(self):
        """Section 5.2: after renewal the node emits incremental change
        notifications from the last valid to the current result."""
        node = SortingNode()
        query = figure3_query()
        register(node, query, ARTICLES)
        assert visible_ids(node, query) == [3, 4, 7]
        # Fresh bootstrap where id 4 is gone and a new 2019 article
        # exists; the newcomer lands in the offset, shifting id 8 into
        # the visible window.
        renewed = [doc for doc in ARTICLES if doc["_id"] != 4]
        renewed.append({"_id": 20, "title": "Fresh", "year": 2019})
        changes = register(node, query, renewed)
        assert visible_ids(node, query) == [8, 3, 7]
        kinds = {(c.match_type, c.key) for c in changes}
        assert (MatchType.REMOVE, 4) in kinds
        assert (MatchType.ADD, 8) in kinds

    def test_renewal_with_identical_state_is_silent(self):
        node = SortingNode()
        query = figure3_query()
        register(node, query, ARTICLES)
        changes = register(node, query, ARTICLES)
        assert changes == []


class TestUnlimitedSortedQueries:
    def test_sorted_query_without_limit_tracks_everything(self):
        node = SortingNode()
        query = Query({}, sort=[("year", -1)])
        register(node, query, ARTICLES)
        state = node.state_of(query.query_id)
        assert state.complete
        assert state.current_slack() is None
        doc = {"_id": 100, "year": 2030, "title": "future"}
        changes = node.handle_event(event(query, MatchType.ADD, doc))
        assert changes[0].match_type is MatchType.ADD
        assert changes[0].index == 0
        assert len(visible_ids(node, query)) == 8

    def test_unlimited_query_never_errors_on_removal(self):
        node = SortingNode()
        query = Query({}, sort=[("year", -1)])
        register(node, query, ARTICLES)
        for doc in ARTICLES:
            changes = node.handle_event(
                event(query, MatchType.REMOVE, key=doc["_id"], version=2)
            )
            assert not any(c.is_error for c in changes)
        assert visible_ids(node, query) == []


class TestVersionHandling:
    def test_stale_event_version_ignored(self):
        node = SortingNode()
        query = Query({}, sort=[("year", -1)], limit=3)
        register(node, query, ARTICLES, slack=2)
        newer = {"_id": 5, "title": "DB Fun v3", "year": 2018}
        node.handle_event(event(query, MatchType.CHANGE, newer, version=3))
        older = {"_id": 5, "title": "DB Fun v2", "year": 2018}
        node.handle_event(event(query, MatchType.CHANGE, older, version=2))
        state = node.state_of(query.query_id)
        titles = {doc["title"] for _, doc in state.visible()}
        assert "DB Fun v3" in titles and "DB Fun v2" not in titles

    def test_stale_remove_ignored(self):
        node = SortingNode()
        query = Query({}, sort=[("year", -1)], limit=3)
        register(node, query, ARTICLES, slack=2)
        newer = {"_id": 5, "title": "v5", "year": 2018}
        node.handle_event(event(query, MatchType.CHANGE, newer, version=5))
        changes = node.handle_event(
            event(query, MatchType.REMOVE, key=5, version=2)
        )
        assert changes == []
        assert 5 in visible_ids(node, query)

    def test_version_zero_upsert_does_not_bypass_staleness(self):
        """Regression: ``if version and version < …`` let version-0
        writes skip the staleness check entirely, clobbering a newer
        document.  Version comparison must be strict, like the
        filtering stage's retention buffer and client materialization."""
        node = SortingNode()
        query = Query({}, sort=[("year", -1)], limit=3)
        register(node, query, ARTICLES, slack=2)
        newer = {"_id": 5, "title": "DB Fun v3", "year": 2018}
        node.handle_event(event(query, MatchType.CHANGE, newer, version=3))
        zero = {"_id": 5, "title": "DB Fun v0", "year": 2018}
        changes = node.handle_event(
            event(query, MatchType.CHANGE, zero, version=0)
        )
        assert changes == []
        titles = {
            doc["title"]
            for _, doc in node.state_of(query.query_id).visible()
        }
        assert "DB Fun v3" in titles and "DB Fun v0" not in titles

    def test_version_zero_remove_does_not_bypass_staleness(self):
        node = SortingNode()
        query = Query({}, sort=[("year", -1)], limit=3)
        register(node, query, ARTICLES, slack=2)
        newer = {"_id": 5, "title": "v5", "year": 2018}
        node.handle_event(event(query, MatchType.CHANGE, newer, version=5))
        changes = node.handle_event(
            event(query, MatchType.REMOVE, key=5, version=0)
        )
        assert changes == []
        assert 5 in visible_ids(node, query)

    def test_version_zero_applies_against_version_zero_entry(self):
        """A version-0 write against a version-0 entry is not stale —
        equal versions apply (idempotent re-delivery)."""
        node = SortingNode()
        query = Query({}, sort=[("year", -1)], limit=3)
        rewritten = query.rewritten_for_subscription(2)
        bootstrap = sorted(ARTICLES, key=query.sort.key)[: rewritten.limit]
        node.register_query(query, bootstrap, {}, slack=2)  # versions all 0
        retitled = {"_id": 5, "title": "Retitled", "year": 2018}
        node.handle_event(event(query, MatchType.CHANGE, retitled, version=0))
        titles = {
            doc["title"]
            for _, doc in node.state_of(query.query_id).visible()
        }
        assert "Retitled" in titles
