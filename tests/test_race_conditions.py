"""The paper's two race conditions, provoked deterministically.

Section 5.1 names them explicitly:

* **write-query race** — a write racing the pull-based execution of the
  initial result: the write is only in the initial result if it commits
  first; either way the final state must converge;
* **write-subscription race** — a write processed by the responsible
  matching node *before* the subscription request arrives; without
  write stream retention the change would be lost.

The whole stack (broker + cluster grid) runs on one deterministic
:class:`InlineExecutionModel`: undelayed messages cascade synchronously
on the caller's thread, while delayed messages wait on a virtual-time
heap until ``drain()`` advances the clock.  Skewing the subscription
channel therefore makes the subscription request lose the race on
*every* run — no wall-clock sleeps, no polling, same interleaving under
any scheduler.
"""

import pytest

from repro.core.cluster import InvaliDBCluster, serialize_query
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.event.broker import Broker
from repro.event.channels import QUERY_PREFIX, query_channel
from repro.query.engine import Query
from repro.runtime.execution import ExecutionConfig, InlineExecutionModel


def inline_stack(delay_fn=None, query_partitions=2, write_partitions=2,
                 retention_seconds=10.0, seed=7):
    """Broker + cluster + app server sharing one inline model."""
    model = InlineExecutionModel(ExecutionConfig(mode="inline", seed=seed))
    broker = Broker(delay_fn=delay_fn, execution=model)
    config = InvaliDBConfig(
        query_partitions=query_partitions,
        write_partitions=write_partitions,
        retention_seconds=retention_seconds,
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("race-app", broker, config=config)
    return model, broker, cluster, app


def slow_subscriptions(channel):
    """Subscription requests travel 150 (virtual) ms slower than writes."""
    return 0.15 if channel.startswith(QUERY_PREFIX) else 0.0


@pytest.fixture
def slow_subscription_stack():
    model, broker, cluster, app = inline_stack(delay_fn=slow_subscriptions)
    yield model, broker, cluster, app
    app.close()
    cluster.stop()
    broker.close()


class TestWriteSubscriptionRace:
    def test_write_racing_subscription_is_replayed(self,
                                                   slow_subscription_stack):
        model, broker, cluster, app = slow_subscription_stack
        # Subscribe: the initial result is computed from an empty DB and
        # the subscription request now waits on the virtual-time heap.
        subscription = app.subscribe("items", {"v": {"$gte": 10}})
        assert subscription.initial.documents == []
        # The write overtakes the subscription request on the fast lane
        # and reaches the matching nodes first — synchronously, since
        # undelayed inline messages cascade on this very call.
        app.insert("items", {"_id": 1, "v": 50})
        assert subscription.change_count == 0  # the query is not live yet
        # drain() advances virtual time, delivering the subscription;
        # retention replay must still produce the add notification.
        assert broker.drain()
        assert subscription.change_count >= 1
        assert [d["_id"] for d in subscription.result()] == [1]

    def test_without_retention_the_write_is_lost(self):
        """Ablation: zero retention reproduces the failure the paper's
        retention mechanism exists to prevent."""
        model, broker, cluster, app = inline_stack(
            delay_fn=slow_subscriptions,
            query_partitions=1, write_partitions=1, retention_seconds=0.0,
        )
        try:
            subscription = app.subscribe("items", {"v": {"$gte": 10}})
            app.insert("items", {"_id": 1, "v": 50})
            assert broker.drain()
            assert cluster.drain()
            # The change was lost: no notification, result diverges.
            assert subscription.change_count == 0
            assert subscription.result() == []
        finally:
            app.close()
            cluster.stop()
            broker.close()

    def test_interleaving_is_reproducible_across_seeds(self):
        """The seeded scheduler changes service order, not outcomes:
        convergence holds for every seed, deterministically."""
        for seed in (1, 2, 3):
            model, broker, cluster, app = inline_stack(
                delay_fn=slow_subscriptions, seed=seed
            )
            try:
                subscription = app.subscribe("items", {"v": {"$gte": 10}})
                for key in range(4):
                    app.insert("items", {"_id": key, "v": 50 + key})
                assert broker.drain()
                assert sorted(d["_id"] for d in subscription.result()) == [
                    0, 1, 2, 3
                ]
            finally:
                app.close()
                cluster.stop()
                broker.close()


class TestWriteQueryRace:
    def test_write_before_query_lands_in_initial_result(self):
        model, broker, cluster, app = inline_stack()
        try:
            app.insert("items", {"_id": 1, "v": 50})
            subscription = app.subscribe("items", {"v": {"$gte": 10}})
            # The write committed before the pull-based query: it must be
            # in the initial result and NOT produce a duplicate add
            # (staleness avoidance via version comparison).
            assert [d["_id"] for d in subscription.initial.documents] == [1]
            assert broker.drain()
            assert cluster.drain()
            adds = [n for n in subscription.notifications
                    if n.match_type.value == "add" and n.key == 1]
            assert adds == []
        finally:
            app.close()
            cluster.stop()
            broker.close()

    def test_stale_bootstrap_corrected_by_retention(self):
        """A delete racing the initial result: the subscription ships a
        bootstrap that still contains the deleted item; the retained
        (newer) delete must purge it."""
        model, broker, cluster, app = inline_stack(
            query_partitions=1, write_partitions=1
        )
        try:
            app.insert("items", {"_id": 1, "v": 50})
            assert broker.drain()
            # Database-side delete whose after-image reaches the cluster
            # NOW (synchronously, inline).
            app.delete("items", 1)
            assert broker.drain()
            # Hand-craft a STALE subscription: bootstrap still holds v1.
            query = Query({"v": {"$gte": 10}}, collection="items")
            subscription = app.subscribe("items", {"v": {"$gte": 10}})
            # (subscribe() reads the current DB, which is already empty,
            # so emulate the stale bootstrap through the wire directly.)
            broker.publish(query_channel("default"), {
                "kind": "subscribe",
                "app_server": app.server_id,
                "query_id": query.query_id,
                "query_hash": query.hash,
                "query": serialize_query(query),
                "bootstrap": [{"_id": 1, "v": 50}],
                "versions": [[1, 1]],
                "slack": 2,
            })
            assert broker.drain()
            assert cluster.drain()
            assert any(
                n.match_type.value == "remove"
                for n in subscription.notifications
            )
            node = cluster.filtering_node(0, 0)
            assert node.result_partition(query.query_id) == []
        finally:
            app.close()
            cluster.stop()
            broker.close()
