"""The paper's two race conditions, provoked through broker delays.

Section 5.1 names them explicitly:

* **write-query race** — a write racing the pull-based execution of the
  initial result: the write is only in the initial result if it commits
  first; either way the final state must converge;
* **write-subscription race** — a write processed by the responsible
  matching node *before* the subscription request arrives; without
  write stream retention the change would be lost.

We skew message delivery with a per-channel delay function so the
subscription request reliably loses the race, then assert convergence.
"""

import time

import pytest

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.event.broker import Broker
from repro.event.channels import QUERY_PREFIX


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


@pytest.fixture
def slow_subscription_stack():
    """A broker where subscription requests travel 150 ms slower than
    writes — the write-subscription race, made deterministic."""
    broker = Broker(
        delay_fn=lambda channel: 0.15 if channel.startswith(QUERY_PREFIX)
        else 0.0
    )
    config = InvaliDBConfig(query_partitions=2, write_partitions=2,
                            retention_seconds=10.0)
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("race-app", broker, config=config)
    yield broker, cluster, app
    app.close()
    cluster.stop()
    broker.close()


class TestWriteSubscriptionRace:
    def test_write_racing_subscription_is_replayed(self,
                                                   slow_subscription_stack):
        broker, cluster, app = slow_subscription_stack
        # Subscribe: the initial result is computed from an empty DB and
        # the subscription request is now in (slow) flight.
        subscription = app.subscribe("items", {"v": {"$gte": 10}})
        assert subscription.initial.documents == []
        # The write overtakes the subscription request on the fast lane
        # and reaches the matching nodes first.
        app.insert("items", {"_id": 1, "v": 50})
        # Retention replay must still produce the add notification.
        assert wait_for(lambda: subscription.change_count >= 1)
        assert [d["_id"] for d in subscription.result()] == [1]

    def test_without_retention_the_write_is_lost(self):
        """Ablation: zero retention reproduces the failure the paper's
        retention mechanism exists to prevent."""
        broker = Broker(
            delay_fn=lambda channel: 0.15 if channel.startswith(QUERY_PREFIX)
            else 0.0
        )
        config = InvaliDBConfig(query_partitions=1, write_partitions=1,
                                retention_seconds=0.0)
        cluster = InvaliDBCluster(broker, config).start()
        app = AppServer("no-retention", broker, config=config)
        try:
            subscription = app.subscribe("items", {"v": {"$gte": 10}})
            app.insert("items", {"_id": 1, "v": 50})
            time.sleep(0.6)
            broker.drain()
            cluster.drain()
            # The change was lost: no notification, result diverges.
            assert subscription.change_count == 0
            assert subscription.result() == []
        finally:
            app.close()
            cluster.stop()
            broker.close()


class TestWriteQueryRace:
    def test_write_before_query_lands_in_initial_result(self, broker,
                                                        cluster_factory,
                                                        app_server_factory):
        cluster = cluster_factory(2, 2, retention_seconds=10.0)
        app = app_server_factory()
        app.insert("items", {"_id": 1, "v": 50})
        subscription = app.subscribe("items", {"v": {"$gte": 10}})
        # The write committed before the pull-based query: it must be in
        # the initial result and NOT produce a duplicate add.
        assert [d["_id"] for d in subscription.initial.documents] == [1]
        broker.drain()
        cluster.drain()
        time.sleep(0.2)
        adds = [n for n in subscription.notifications
                if n.match_type.value == "add" and n.key == 1]
        assert adds == []

    def test_stale_bootstrap_corrected_by_retention(self, broker,
                                                    cluster_factory,
                                                    app_server_factory):
        """A delete racing the initial result: the subscription ships a
        bootstrap that still contains the deleted item; the retained
        (newer) delete must purge it."""
        from repro.core.cluster import serialize_query
        from repro.event.channels import query_channel
        from repro.query.engine import Query

        cluster = cluster_factory(1, 1, retention_seconds=10.0)
        app = app_server_factory()
        app.insert("items", {"_id": 1, "v": 50})
        time.sleep(0.1)
        broker.drain()
        cluster.drain()
        # Database-side delete whose after-image reaches the cluster NOW.
        app.delete("items", 1)
        time.sleep(0.1)
        broker.drain()
        cluster.drain()
        # Hand-craft a STALE subscription: bootstrap still holds v1.
        query = Query({"v": {"$gte": 10}}, collection="items")
        subscription = app.subscribe("items", {"v": {"$gte": 10}})
        # (subscribe() reads the current DB, which is already empty, so
        # emulate the stale bootstrap through the wire directly.)
        broker.publish(query_channel("default"), {
            "kind": "subscribe",
            "app_server": app.server_id,
            "query_id": query.query_id,
            "query_hash": query.hash,
            "query": serialize_query(query),
            "bootstrap": [{"_id": 1, "v": 50}],
            "versions": [[1, 1]],
            "slack": 2,
        })
        time.sleep(0.2)
        broker.drain()
        cluster.drain()
        assert wait_for(
            lambda: any(
                n.match_type.value == "remove"
                for n in subscription.notifications
            )
        )
        node = cluster.filtering_node(0, 0)
        assert node.result_partition(query.query_id) == []
