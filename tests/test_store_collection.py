"""Collection CRUD, find, find_and_modify and after-image tests."""

import pytest

from repro.errors import (
    DocumentNotFoundError,
    DuplicateKeyError,
    InvalidDocumentError,
)
from repro.store.collection import Collection
from repro.types import MatchType, WriteKind


@pytest.fixture
def articles(clock):
    collection = Collection("articles", clock=clock)
    rows = [
        ("DB Fun", 2018),
        ("No SQL!", 2018),
        ("BaaS For Dummies", 2017),
        ("Query Languages", 2017),
        ("Streams in Action", 2016),
        ("SaaS For Dummies", 2016),
    ]
    for index, (title, year) in enumerate(rows, start=1):
        collection.insert({"_id": index, "title": title, "year": year})
    return collection


class TestInsert:
    def test_insert_returns_versioned_after_image(self, collection):
        after = collection.insert({"_id": 1, "v": 10})
        assert after.kind is WriteKind.INSERT
        assert after.version == 1
        assert after.document == {"_id": 1, "v": 10}

    def test_duplicate_key(self, collection):
        collection.insert({"_id": 1})
        with pytest.raises(DuplicateKeyError):
            collection.insert({"_id": 1})

    def test_missing_id(self, collection):
        with pytest.raises(InvalidDocumentError):
            collection.insert({"v": 1})

    def test_invalid_field_names(self, collection):
        with pytest.raises(InvalidDocumentError):
            collection.insert({"_id": 1, "$bad": 1})
        with pytest.raises(InvalidDocumentError):
            collection.insert({"_id": 1, "a.b": 1})

    def test_insert_copies_the_document(self, collection):
        source = {"_id": 1, "nested": {"v": 1}}
        collection.insert(source)
        source["nested"]["v"] = 99
        assert collection.get(1)["nested"]["v"] == 1


class TestVersioning:
    """Versions increase on every write — the staleness-avoidance basis."""

    def test_version_sequence(self, collection):
        collection.insert({"_id": 1, "v": 0})
        assert collection.version_of(1) == 1
        collection.update(1, {"$set": {"v": 1}})
        assert collection.version_of(1) == 2
        collection.replace({"_id": 1, "v": 2})
        assert collection.version_of(1) == 3
        after = collection.delete(1)
        assert after.version == 4

    def test_unknown_key_has_version_zero(self, collection):
        assert collection.version_of("nope") == 0

    def test_reinsert_after_delete_stays_monotone(self, collection):
        """A re-insert must outrank the delete tombstone's version, or the
        staleness protocol drops the re-insert on every downstream stage."""
        collection.insert({"_id": 1, "v": 0})
        collection.delete(1)
        after = collection.insert({"_id": 1, "v": 1})
        assert after.version == 3
        assert collection.version_of(1) == 3


class TestUpdateAndDelete:
    def test_update_applies_operators(self, collection):
        collection.insert({"_id": 1, "count": 1})
        after = collection.update(1, {"$inc": {"count": 4}})
        assert after.document["count"] == 5
        assert after.kind is WriteKind.UPDATE

    def test_update_missing_document(self, collection):
        with pytest.raises(DocumentNotFoundError):
            collection.update(9, {"$set": {"a": 1}})

    def test_delete_after_image_is_null(self, collection):
        collection.insert({"_id": 1})
        after = collection.delete(1)
        assert after.kind is WriteKind.DELETE
        assert after.document is None
        assert 1 not in collection

    def test_delete_missing(self, collection):
        with pytest.raises(DocumentNotFoundError):
            collection.delete(1)

    def test_save_upserts(self, collection):
        first = collection.save({"_id": 1, "v": 1})
        second = collection.save({"_id": 1, "v": 2})
        assert first.kind is WriteKind.INSERT
        assert second.kind is WriteKind.UPDATE
        assert collection.get(1)["v"] == 2


class TestFindAndModify:
    """The paper uses findAndModify to retrieve after-images on writes."""

    def test_update_document_form(self, collection):
        collection.insert({"_id": 1, "v": 1})
        after = collection.find_and_modify(1, {"$set": {"v": 2}})
        assert after.document == {"_id": 1, "v": 2}

    def test_replacement_form(self, collection):
        collection.insert({"_id": 1, "v": 1})
        after = collection.find_and_modify(1, {"_id": 1, "w": 9})
        assert after.document == {"_id": 1, "w": 9}

    def test_upsert_with_operators(self, collection):
        after = collection.find_and_modify(5, {"$set": {"v": 1}}, upsert=True)
        assert after.kind is WriteKind.INSERT
        assert after.document == {"_id": 5, "v": 1}

    def test_upsert_replacement(self, collection):
        after = collection.find_and_modify(5, {"v": 3}, upsert=True)
        assert after.document == {"_id": 5, "v": 3}

    def test_remove(self, collection):
        collection.insert({"_id": 1})
        after = collection.find_and_modify(1, remove=True)
        assert after.kind is WriteKind.DELETE

    def test_replacement_id_mismatch(self, collection):
        collection.insert({"_id": 1})
        with pytest.raises(InvalidDocumentError):
            collection.find_and_modify(1, {"_id": 2, "v": 1})

    def test_requires_update_or_remove(self, collection):
        with pytest.raises(InvalidDocumentError):
            collection.find_and_modify(1)


class TestFind:
    def test_filter(self, articles):
        result = articles.find({"year": 2017})
        assert {d["_id"] for d in result} == {3, 4}

    def test_find_returns_copies(self, articles):
        articles.find({"year": 2017})[0]["title"] = "mutated"
        assert articles.get(3)["title"] == "BaaS For Dummies"

    def test_paper_example_query(self, articles):
        """Figure 3: ORDER BY year DESC OFFSET 2 LIMIT 3."""
        result = articles.find({}, sort=[("year", -1)], skip=2, limit=3)
        assert [d["_id"] for d in result] == [3, 4, 5]

    def test_sort_limit(self, articles):
        result = articles.find({}, sort=[("year", -1)], limit=2)
        assert [d["_id"] for d in result] == [1, 2]

    def test_find_one(self, articles):
        assert articles.find_one({"year": 2016})["_id"] == 5
        assert articles.find_one({"year": 1999}) is None

    def test_count(self, articles):
        assert articles.count() == 6
        assert articles.count({"year": {"$gte": 2017}}) == 4

    def test_execute_parsed_query(self, articles):
        from repro.query.engine import Query

        query = Query({}, collection="articles", sort=[("year", -1)],
                      limit=3, offset=2)
        assert [d["_id"] for d in articles.execute(query)] == [3, 4, 5]


class TestWriteListeners:
    def test_listener_receives_every_write(self, collection):
        seen = []
        unsubscribe = collection.on_write(seen.append)
        collection.insert({"_id": 1})
        collection.update(1, {"$set": {"a": 1}})
        collection.delete(1)
        assert [a.kind for a in seen] == [
            WriteKind.INSERT, WriteKind.UPDATE, WriteKind.DELETE,
        ]
        unsubscribe()
        collection.insert({"_id": 2})
        assert len(seen) == 3

    def test_oplog_records_every_write(self, collection):
        collection.insert({"_id": 1, "v": 0})
        collection.update(1, {"$inc": {"v": 1}})
        collection.delete(1)
        entries = collection.oplog.read_from(1)
        assert [e.kind for e in entries] == [
            WriteKind.INSERT, WriteKind.UPDATE, WriteKind.DELETE,
        ]
        assert [e.version for e in entries] == [1, 2, 3]
