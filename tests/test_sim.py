"""Simulation substrate tests: DES engine, queues, metrics, models."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.cluster_model import (
    SATURATED,
    ClusterCosts,
    QuaestorModel,
    SimulatedInvaliDB,
)
from repro.sim.des import Simulator
from repro.sim.experiment import (
    latency_histogram,
    measure_latency,
    sustainable_per_sla,
    sweep_query_load,
)
from repro.sim.metrics import LatencyRecorder, LatencyStats
from repro.sim.network import HopModel
from repro.sim.resources import FifoServer
from repro.sim.workload import PaperWorkload, generate_document


class TestSimulator:
    def test_events_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(2.0, lambda: order.append("late"))
        simulator.schedule(1.0, lambda: order.append("early"))
        simulator.run()
        assert order == ["early", "late"]
        assert simulator.now == 2.0

    def test_fifo_among_equal_timestamps(self):
        simulator = Simulator()
        order = []
        for index in range(5):
            simulator.schedule(1.0, lambda i=index: order.append(i))
        simulator.run()
        assert order == [0, 1, 2, 3, 4]

    def test_cancellation(self):
        simulator = Simulator()
        fired = []
        handle = simulator.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        simulator.run()
        assert fired == []

    def test_run_until_stops_at_boundary(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.0, lambda: fired.append(1))
        simulator.schedule(5.0, lambda: fired.append(5))
        simulator.run_until(2.0)
        assert fired == [1]
        assert simulator.now == 2.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_event_budget(self):
        simulator = Simulator()

        def reschedule():
            simulator.schedule(0.001, reschedule)

        simulator.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            simulator.run(max_events=100)


class TestFifoServer:
    def test_idle_server_serves_immediately(self):
        simulator = Simulator()
        server = FifoServer(simulator)
        assert server.offer(0.5) == 0.5

    def test_busy_server_queues(self):
        simulator = Simulator()
        server = FifoServer(simulator)
        assert server.offer(0.5) == 0.5
        assert server.offer(0.5) == 1.0  # queued behind the first

    def test_probe_does_not_consume_capacity(self):
        simulator = Simulator()
        server = FifoServer(simulator)
        server.offer(1.0)
        assert server.probe(0.5) == 1.5
        assert server.offer(0.5) == 1.5  # probe left no trace

    def test_utilization(self):
        simulator = Simulator()
        server = FifoServer(simulator)
        server.offer(0.5)
        simulator.now = 1.0
        assert server.utilization() == pytest.approx(0.5)


class TestMetrics:
    def test_stats_columns(self):
        stats = LatencyStats.from_samples([1.0, 2.0, 3.0, 4.0])
        assert stats.average == 2.5
        assert stats.maximum == 4.0
        assert stats.count == 4
        assert stats.p99 == 4.0

    def test_p99_nearest_rank(self):
        samples = list(range(1, 101))
        stats = LatencyStats.from_samples(samples)
        assert stats.p99 == 99

    def test_empty_sample_is_nan(self):
        stats = LatencyStats.from_samples([])
        assert math.isnan(stats.p99)
        assert stats.exceeds(100.0)

    def test_warmup_window_skipped(self):
        recorder = LatencyRecorder(warmup_until=2.0)
        recorder.record(1.0, 5.0)
        recorder.record(3.0, 7.0)
        assert recorder.samples == [7.0]
        assert recorder.dropped == 1

    def test_exceeds(self):
        stats = LatencyStats.from_samples([10.0] * 98 + [50.0, 60.0])
        assert not stats.exceeds(60.0)
        assert stats.exceeds(20.0)  # p99 (nearest rank) is 50.0


class TestHopModel:
    def test_samples_exceed_base(self):
        import random

        hop = HopModel(base=0.001, jitter_mean=0.0002)
        rng = random.Random(1)
        samples = [hop.sample(rng) for _ in range(100)]
        assert all(value >= 0.001 for value in samples)
        mean = sum(samples) / len(samples)
        assert 0.0011 < mean < 0.0014


class TestWorkload:
    def test_document_shape(self):
        import random

        doc = generate_document(random.Random(1), "k", 42)
        strings = [v for v in doc.values() if isinstance(v, str) and v != "k"]
        assert len(strings) == 5
        assert all(len(s) == 10 for s in strings)
        assert doc["random"] == 42

    def test_each_matching_write_hits_exactly_one_query(self):
        """Section 6.1: only 1 000 queries match exactly one item each."""
        from repro.query import matches

        workload = PaperWorkload(total_queries=50, matching_queries=20)
        queries = workload.queries()
        documents = workload.matching_documents()
        assert len(documents) == 20
        for doc in documents:
            hits = [q for q in queries if matches(doc, q)]
            assert len(hits) == 1

    def test_non_matching_documents_hit_nothing(self):
        from repro.query import matches

        workload = PaperWorkload(total_queries=30, matching_queries=10)
        queries = workload.queries()
        for doc in workload.non_matching_documents(15):
            assert not any(matches(doc, q) for q in queries)

    def test_write_stream_match_count(self):
        from repro.query import matches

        workload = PaperWorkload(total_queries=20, matching_queries=5)
        stream = workload.write_stream(50)
        assert len(stream) == 50
        queries = workload.queries()
        matching = sum(
            1 for doc in stream if any(matches(doc, q) for q in queries)
        )
        assert matching == 5


class TestClusterModel:
    def test_utilization_formula(self):
        model = SimulatedInvaliDB(2, 4)
        # rate/WP * (parse + match*queries/QP)
        expected = (1000 / 4) * (0.0002 + 4e-7 * (2000 / 2))
        assert model.matching_utilization(2000, 1000) == pytest.approx(expected)

    def test_healthy_load_has_low_latency(self):
        stats = SimulatedInvaliDB(1, 1).run(500, 500, duration=5.0)
        assert stats.p99 < 20.0
        assert 5.0 < stats.average < 15.0

    def test_overload_is_saturated(self):
        stats = SimulatedInvaliDB(1, 1).run(10_000, 5_000, duration=5.0)
        assert stats is SATURATED
        assert stats.exceeds(100.0)

    def test_near_saturation_latency_explodes(self):
        healthy = SimulatedInvaliDB(1, 1).run(1000, 1000, duration=5.0)
        saturated = SimulatedInvaliDB(1, 1).run(2400, 1000, duration=5.0)
        assert saturated.p99 > 5 * healthy.p99

    def test_linear_read_scaling(self):
        """Doubling query partitions doubles sustainable queries."""
        single = SimulatedInvaliDB(1, 1).run(1500, 1000, duration=5.0)
        doubled = SimulatedInvaliDB(2, 1).run(3000, 1000, duration=5.0)
        assert not single.exceeds(30.0)
        assert not doubled.exceeds(30.0)

    def test_linear_write_scaling(self):
        single = SimulatedInvaliDB(1, 1).run(1000, 1200, duration=5.0)
        doubled = SimulatedInvaliDB(1, 2).run(1000, 2400, duration=5.0)
        assert not single.exceeds(50.0)
        assert not doubled.exceeds(50.0)

    def test_quaestor_adds_fixed_overhead(self):
        plain = SimulatedInvaliDB(1, 1, seed=9).run(500, 500, duration=5.0)
        quaestor = QuaestorModel(1, 1, seed=9).run(500, 500, duration=5.0)
        overhead = quaestor.average - plain.average
        assert 3.0 < overhead < 8.0

    def test_quaestor_write_ceiling(self):
        model = QuaestorModel(1, 16)
        below = model.run(1000, 4000, duration=5.0)
        above = model.run(1000, 8000, duration=5.0)
        assert not below.exceeds(50.0)
        assert above.exceeds(100.0)

    def test_run_samples_returns_raw_data(self):
        samples = SimulatedInvaliDB(1, 1).run_samples(500, 500, duration=5.0)
        assert samples and all(value > 0 for value in samples)


class TestExperimentHarness:
    def test_sweep_and_sustainable(self):
        points = sweep_query_load(1, step=500, duration=3.0, max_sla_ms=100.0)
        sustainable = sustainable_per_sla(points, [20.0, 100.0])
        assert sustainable[100.0] >= sustainable[20.0] > 0
        # Single node: the paper sustains 1500 and fails at 2000.
        assert 1000 <= sustainable[100.0] <= 2000

    def test_measure_latency_quaestor_flag(self):
        plain = measure_latency(1, 1, 500, 500, duration=3.0)
        quaestor = measure_latency(1, 1, 500, 500, duration=3.0,
                                   quaestor=True)
        assert quaestor.average > plain.average

    def test_latency_histogram(self):
        histogram = latency_histogram([1.0, 1.5, 3.0, 99.0, 500.0],
                                      bin_width_ms=2.0, max_ms=100.0)
        total = sum(frequency for _, frequency in histogram)
        assert total == pytest.approx(1.0)
        assert histogram[0][1] == pytest.approx(2 / 5)
