"""QueryIndex unit tests: decomposition, probing, lifecycle, soundness.

The index's contract is a *superset*: ``candidates(document, coll)``
must contain every query the engine would report as matching.  These
tests pin the decomposition rules and the probe-time edge cases
(boundary inclusivity, type brackets, array fan-out, NaN); the
randomized end-to-end guarantee lives in ``test_index_equivalence.py``.
"""

import math

import pytest

from repro.query.engine import MongoQueryEngine, Query
from repro.query.index import QueryIndex, decompose


def candidates_of(index, doc, collection="default"):
    return index.candidates({"_id": 0, **doc}, collection)


def build(*queries):
    index = QueryIndex()
    for query in queries:
        index.add(query)
    return index


class TestDecomposition:
    def test_equality_is_indexable(self):
        assert decompose(Query({"v": 5})) is not None

    def test_in_is_indexable(self):
        entries = decompose(Query({"tag": {"$in": [1, 2, 3]}}))
        assert len(entries) == 3

    def test_empty_in_yields_zero_entries(self):
        # $in: [] matches nothing — indexable with no entries, meaning
        # the query is never a candidate (as opposed to residual).
        assert decompose(Query({"tag": {"$in": []}})) == []

    def test_one_sided_range_is_indexable(self):
        for filt in ({"v": {"$gt": 1}}, {"v": {"$gte": 1}},
                     {"v": {"$lt": 1}}, {"v": {"$lte": 1}}):
            assert decompose(Query(filt)) is not None

    def test_two_sided_range_folds_into_one_interval(self):
        entries = decompose(Query({"v": {"$gte": 10, "$lt": 20}}))
        assert len(entries) == 1
        entry = entries[0]
        assert (entry.lower, entry.upper) == ((10, True), (20, False))

    def test_equality_preferred_over_range(self):
        entries = decompose(Query({"v": 5, "w": {"$gte": 1, "$lt": 9}}))
        assert len(entries) == 1
        assert entries[0].path == "v"

    def test_or_indexable_when_all_branches_are(self):
        entries = decompose(Query({"$or": [{"v": 1}, {"w": {"$gt": 2}}]}))
        assert len(entries) == 2

    def test_or_residual_when_any_branch_is_not(self):
        assert decompose(
            Query({"$or": [{"v": 1}, {"w": {"$ne": 2}}]})
        ) is None

    @pytest.mark.parametrize("filt", [
        {},                                # matches everything
        {"v": {"$ne": 3}},                 # negation
        {"v": {"$exists": True}},          # path test
        {"s": {"$regex": "^a"}},           # text
        {"v": None},                       # null equality matches missing
        {"v": float("nan")},               # NaN is equal-to-everything
        {"v": {"$eq": [1, 2]}},            # container equality
        {"v": {"$in": [1, None]}},         # null inside $in
        {"v": {"$gt": True}},              # bool is its own bracket
    ])
    def test_residual_shapes(self, filt):
        assert decompose(Query(filt)) is None


class TestEqualityProbes:
    def test_hit_and_miss(self):
        q = Query({"v": 5})
        index = build(q)
        assert candidates_of(index, {"v": 5}) == {q.query_id}
        assert candidates_of(index, {"v": 6}) == set()
        assert candidates_of(index, {"w": 5}) == set()

    def test_numeric_conflation_is_a_superset(self):
        # 1 == 1.0 == True under dict hashing; the engine sorts out the
        # bool/number bracket, the index only has to over-approximate.
        q = Query({"v": 1})
        index = build(q)
        assert candidates_of(index, {"v": 1.0}) == {q.query_id}

    def test_in_fires_on_any_member(self):
        q = Query({"tag": {"$in": [1, 2]}})
        index = build(q)
        assert candidates_of(index, {"tag": 2}) == {q.query_id}
        assert candidates_of(index, {"tag": 3}) == set()

    def test_array_element_fires_equality(self):
        q = Query({"tag": 7})
        index = build(q)
        assert candidates_of(index, {"tag": [3, 7]}) == {q.query_id}


class TestRangeProbes:
    def test_one_sided_boundary_inclusivity(self):
        gt = Query({"v": {"$gt": 10}})
        gte = Query({"v": {"$gte": 10}})
        lt = Query({"v": {"$lt": 10}})
        lte = Query({"v": {"$lte": 10}})
        index = build(gt, gte, lt, lte)
        assert candidates_of(index, {"v": 10}) == {
            gte.query_id, lte.query_id
        }
        assert candidates_of(index, {"v": 11}) == {
            gt.query_id, gte.query_id
        }
        assert candidates_of(index, {"v": 9}) == {lt.query_id, lte.query_id}

    def test_interval_boundaries(self):
        q = Query({"v": {"$gte": 10, "$lt": 20}})
        index = build(q)
        assert candidates_of(index, {"v": 10}) == {q.query_id}
        assert candidates_of(index, {"v": 19.5}) == {q.query_id}
        assert candidates_of(index, {"v": 20}) == set()
        assert candidates_of(index, {"v": 9.999}) == set()

    def test_empty_interval_is_never_a_candidate(self):
        q = Query({"v": {"$gte": 20, "$lt": 10}})
        index = build(q)
        assert q.query_id in index
        for value in (5, 10, 15, 20, 25):
            assert candidates_of(index, {"v": value}) == set()

    def test_string_and_number_brackets_are_separate(self):
        nums = Query({"v": {"$gte": 10}})
        strs = Query({"v": {"$gte": "m"}})
        index = build(nums, strs)
        assert candidates_of(index, {"v": 50}) == {nums.query_id}
        assert candidates_of(index, {"v": "z"}) == {strs.query_id}
        # Bools never probe the numeric bracket (own BSON bracket).
        assert candidates_of(index, {"v": True}) == set()

    def test_interval_tree_stabbing_at_scale(self):
        # Enough intervals to force the tree past its linear leaves.
        queries = [
            Query({"v": {"$gte": i, "$lt": i + 1}}) for i in range(200)
        ]
        index = build(*queries)
        for probe in (0, 0.5, 99, 150.25, 199, 199.999):
            expected = {
                q.query_id for i, q in enumerate(queries)
                if i <= probe < i + 1
            }
            assert candidates_of(index, {"v": probe}) == expected
        assert candidates_of(index, {"v": 200}) == set()
        assert candidates_of(index, {"v": -0.001}) == set()

    def test_overlapping_intervals(self):
        wide = Query({"v": {"$gte": 0, "$lte": 100}})
        narrow = Query({"v": {"$gt": 40, "$lt": 60}})
        point = Query({"v": {"$gte": 50, "$lte": 50}})
        index = build(wide, narrow, point)
        assert candidates_of(index, {"v": 50}) == {
            wide.query_id, narrow.query_id, point.query_id
        }
        assert candidates_of(index, {"v": 40}) == {wide.query_id}
        assert candidates_of(index, {"v": 101}) == set()


class TestConservativeProbes:
    def test_array_fan_out_keeps_intervals_sound(self):
        # No single element lies inside [12, 14), but MongoDB matches:
        # element 10 satisfies nothing, but $gte:12 is satisfied by 15
        # and $lt:14 by 10 — the conjunction is evaluated per bound.
        q = Query({"arr": {"$gte": 12, "$lt": 14}})
        index = build(q)
        engine = MongoQueryEngine()
        doc = {"_id": 0, "arr": [10, 15]}
        assert engine.matches(q, doc)
        assert index.candidates(doc, "default") == {q.query_id}

    def test_nan_document_value_returns_numeric_ranges(self):
        # NaN compares equal to every number under the engine's BSON
        # comparison, so it satisfies every inclusive bound.
        rng = Query({"v": {"$gte": 10}})
        interval = Query({"v": {"$gte": 0, "$lte": 5}})
        other = Query({"w": {"$gte": 10}})
        index = build(rng, interval, other)
        got = candidates_of(index, {"v": float("nan")})
        assert got == {rng.query_id, interval.query_id}

    def test_residual_queries_are_always_candidates(self):
        residual = Query({"v": {"$ne": 3}})
        indexed = Query({"v": 5})
        index = build(residual, indexed)
        assert candidates_of(index, {"anything": 1}) == {residual.query_id}

    def test_nan_equality_query_is_residual_and_sound(self):
        q = Query({"v": float("nan")})
        index = build(q)
        engine = MongoQueryEngine()
        doc = {"_id": 0, "v": 3}
        # BSON: NaN == any number, so the query matches plain numbers.
        assert engine.matches(q, doc)
        assert index.candidates(doc, "default") == {q.query_id}


class TestCollectionsAndPaths:
    def test_collection_discriminator(self):
        a = Query({"v": 1}, collection="a")
        b = Query({"v": 1}, collection="b")
        index = build(a, b)
        assert candidates_of(index, {"v": 1}, "a") == {a.query_id}
        assert candidates_of(index, {"v": 1}, "b") == {b.query_id}
        assert candidates_of(index, {"v": 1}, "c") == set()

    def test_nested_paths(self):
        q = Query({"address.city": "berlin"})
        index = build(q)
        assert candidates_of(
            index, {"address": {"city": "berlin"}}
        ) == {q.query_id}
        assert candidates_of(index, {"address": {"city": "munich"}}) == set()
        assert candidates_of(index, {"address": {}}) == set()

    def test_array_of_documents_fans_out(self):
        q = Query({"items.sku": 42})
        index = build(q)
        doc = {"items": [{"sku": 1}, {"sku": 42}]}
        assert candidates_of(index, doc) == {q.query_id}


class TestLifecycle:
    def test_add_reports_indexability(self):
        index = QueryIndex()
        assert index.add(Query({"v": 5})) is True
        assert index.add(Query({"v": {"$ne": 5}})) is False

    def test_add_is_idempotent(self):
        q = Query({"v": 5})
        index = build(q)
        assert index.add(q) is True
        assert len(index) == 1
        assert candidates_of(index, {"v": 5}) == {q.query_id}

    def test_remove_drops_all_entry_kinds(self):
        queries = [
            Query({"v": 5}),
            Query({"tag": {"$in": [1, 2]}}),
            Query({"v": {"$gte": 10}}),
            Query({"v": {"$lt": 3}}),
            Query({"v": {"$gte": 0, "$lt": 100}}),
            Query({"v": {"$ne": 9}}),
        ]
        index = build(*queries)
        for query in queries:
            assert index.remove(query.query_id) is True
        assert len(index) == 0
        for doc in ({"v": 5}, {"tag": 1}, {"v": 50}, {"v": 1}):
            assert candidates_of(index, doc) == set()

    def test_remove_unknown_is_false(self):
        assert QueryIndex().remove("nope") is False

    def test_interval_tree_rebuilds_after_mutation(self):
        queries = [
            Query({"v": {"$gte": i, "$lt": i + 1}}) for i in range(50)
        ]
        index = build(*queries)
        # Force a tree build, then mutate and probe again.
        assert candidates_of(index, {"v": 25.5}) == {queries[25].query_id}
        index.remove(queries[25].query_id)
        assert candidates_of(index, {"v": 25.5}) == set()
        assert candidates_of(index, {"v": 26.5}) == {queries[26].query_id}


class TestSupersetSpotCheck:
    """Brute-force the contract over a deterministic document grid."""

    QUERIES = [
        Query({"v": 5}),
        Query({"v": {"$gte": 10, "$lt": 20}}),
        Query({"v": {"$gt": 25}}),
        Query({"v": {"$lte": 3}}),
        Query({"tag": {"$in": [0, 2]}}),
        Query({"$or": [{"v": 7}, {"tag": 1}]}),
        Query({"v": {"$ne": 12}}),
        Query({"v": {"$exists": False}}),
        Query({"nested.x": {"$gte": 1, "$lte": 2}}),
    ]

    def test_candidates_superset_of_matches(self):
        engine = MongoQueryEngine()
        index = build(*self.QUERIES)
        documents = [
            {"_id": i, "v": value, "tag": value % 3,
             "nested": {"x": value % 4}}
            for i, value in enumerate(range(-2, 32))
        ] + [
            {"_id": 100},
            {"_id": 101, "v": [4, 11, 26]},
            {"_id": 102, "v": "ten"},
            {"_id": 103, "v": None},
            {"_id": 104, "v": float("nan")},
            {"_id": 105, "v": math.inf},
        ]
        for doc in documents:
            got = index.candidates(doc, "default")
            matching = {
                q.query_id for q in self.QUERIES if engine.matches(q, doc)
            }
            assert matching <= got, (doc, matching - got)


class TestIntrospection:
    def test_stats_shape(self):
        index = build(
            Query({"v": 5}),
            Query({"v": {"$gte": 1}}),
            Query({"v": {"$gte": 1, "$lt": 2}}),
            Query({"v": {"$ne": 0}}),
        )
        stats = index.stats()
        assert stats["queries"] == 4
        assert stats["residual_queries"] == 1
        assert stats["eq_entries"] == 1
        assert stats["range_entries"] == 1
        assert stats["interval_entries"] == 1
        assert "QueryIndex" in repr(index)


class TestSpatialDecomposition:
    def test_box_covers_cells(self):
        entries = decompose(
            Query({"loc": {"$geoWithin": {"$box": [[-10, -10], [10, 10]]}}})
        )
        assert entries is not None and len(entries) == 1
        entry = entries[0]
        assert entry.path == "loc"
        assert entry.cells  # a small box covers a bounded cell set

    def test_unbounded_near_sphere_is_broad(self):
        entries = decompose(Query({"loc": {"$nearSphere": {
            "$geometry": {"type": "Point", "coordinates": [0, 0]},
        }}}))
        assert entries is not None and len(entries) == 1
        assert entries[0].cells is None  # broad: fired by any point probe

    def test_spatial_gate_off_is_residual(self):
        query = Query({"loc": {"$geoWithin": {"$box": [[0, 0], [1, 1]]}}})
        assert decompose(query, spatial=False) is None
        assert decompose(query) is not None

    def test_grid_resolution_changes_cover_size(self):
        query = Query(
            {"loc": {"$geoWithin": {"$box": [[-90, -45], [90, 45]]}}}
        )
        coarse = decompose(query, grid_cells=4)[0]
        fine = decompose(query, grid_cells=32)[0]
        assert len(coarse.cells) < len(fine.cells)

    def test_geo_or_indexable_when_all_branches_are(self):
        entries = decompose(Query({"$or": [
            {"loc": {"$geoWithin": {"$box": [[0, 0], [1, 1]]}}},
            {"loc": {"$geoWithin": {"$box": [[20, 20], [21, 21]]}}},
        ]}))
        assert entries is not None and len(entries) == 2


class TestSpatialProbes:
    BOX = Query({"loc": {"$geoWithin": {"$box": [[-10, -10], [10, 10]]}}})
    BROAD = Query({"loc": {"$nearSphere": {
        "$geometry": {"type": "Point", "coordinates": [0, 0]},
    }}})

    def test_point_in_box_is_candidate(self):
        index = build(self.BOX)
        assert candidates_of(index, {"loc": [5, 5]})
        assert not candidates_of(index, {"loc": [90, 5]})

    def test_non_point_value_is_never_a_candidate(self):
        # The engine cannot match a geo predicate against a non-point,
        # so pruning it is sound even for broad entries.
        index = build(self.BOX, self.BROAD)
        assert candidates_of(index, {"loc": "junk"}) == set()
        assert candidates_of(index, {"other": [5, 5]}) == set()

    def test_out_of_range_latitude_probes_broadly(self):
        # |lat| > 90 has no grid row: a conservative probe must return
        # every spatial entry on the path.
        index = build(self.BOX, self.BROAD)
        got = candidates_of(index, {"loc": [0, 120]})
        assert got == {self.BOX.query_id, self.BROAD.query_id}

    def test_broad_entry_fires_on_any_point(self):
        index = build(self.BROAD)
        assert candidates_of(index, {"loc": [179, -80]})

    def test_antimeridian_seam(self):
        hugging = Query({"loc": {"$geoWithin": {
            "$centerSphere": [[179.9, 0], 0.01],
        }}})
        index = build(hugging)
        assert candidates_of(index, {"loc": [-179.95, 0]})
        assert candidates_of(index, {"loc": [180.0, 0.0]})

    def test_array_of_points_fans_out(self):
        index = build(Query({"pts": {"$geoWithin": {
            "$box": [[-10, -10], [10, 10]],
        }}}))
        assert candidates_of(index, {"pts": [[90, 0], [5, 5]]})
        assert not candidates_of(index, {"pts": [[90, 0], [80, 0]]})


class TestTextIndex:
    def test_positive_terms_bucket_queries(self):
        alpha = Query({"$text": {"$search": "alpha"}})
        beta = Query({"$text": {"$search": "beta gamma"}})
        index = build(alpha, beta)
        assert candidates_of(index, {"note": "ALPHA!"}) == {alpha.query_id}
        assert candidates_of(index, {"note": "some gamma"}) == {
            beta.query_id
        }
        assert candidates_of(index, {"note": "delta"}) == set()

    def test_negated_terms_never_prune(self):
        query = Query({"$text": {"$search": "alpha -beta"}})
        index = build(query)
        # The positive term buckets it; the negation must not shrink
        # the candidate set (the engine decides the final answer).
        assert candidates_of(index, {"note": "alpha beta"}) == {
            query.query_id
        }

    def test_phrase_only_search_is_residual(self):
        query = Query({"$text": {"$search": '"alpha beta"'}})
        index = build(query)
        assert index.stats()["residual_queries"] == 1
        assert candidates_of(index, {"note": "anything"}) == {
            query.query_id
        }

    def test_text_gate_off_is_residual(self):
        query = Query({"$text": {"$search": "alpha"}})
        assert decompose(query, text=False) is None
        assert decompose(query) is not None


class TestSpatioTextualLifecycle:
    def test_remove_drops_spatial_and_text_entries(self):
        geo = Query({"loc": {"$geoWithin": {"$box": [[0, 0], [5, 5]]}}})
        text = Query({"$text": {"$search": "alpha"}})
        index = build(geo, text)
        stats = index.stats()
        assert stats["spatial_entries"] == 1
        assert stats["text_entries"] == 1
        assert index.remove(geo.query_id)
        assert index.remove(text.query_id)
        stats = index.stats()
        assert stats["spatial_entries"] == 0
        assert stats["spatial_cells"] == 0
        assert stats["text_entries"] == 0
        assert stats["text_tokens"] == 0

    def test_hit_counters_attribute_by_family(self):
        geo = Query({"loc": {"$geoWithin": {"$box": [[0, 0], [5, 5]]}}})
        text = Query({"$text": {"$search": "alpha"}})
        residual = Query({"v": {"$ne": 1}})
        index = build(geo, text, residual)
        candidates_of(index, {"loc": [2, 2], "note": "alpha"})
        hits = index.stats()["hits"]
        assert hits["spatial"] == 1
        assert hits["text"] == 1
        assert hits["residual"] == 1
        assert hits["equality"] == 0
