"""Property-based tests for store substrate invariants."""

from hypothesis import given, settings, strategies as st

from repro.store.collection import Collection
from repro.store.updates import apply_update
from repro.types import WriteKind

field_names = st.sampled_from(["a", "b", "c"])
numbers = st.integers(min_value=-100, max_value=100)


class TestUpdateOperatorProperties:
    @given(st.dictionaries(field_names, numbers, min_size=1, max_size=3))
    def test_set_then_read_roundtrip(self, updates):
        result = apply_update({"_id": 1}, {"$set": dict(updates)})
        for field, value in updates.items():
            assert result[field] == value

    @given(numbers, numbers)
    def test_inc_is_additive(self, start, delta):
        once = apply_update({"_id": 1, "n": start}, {"$inc": {"n": delta}})
        assert once["n"] == start + delta

    @given(st.lists(numbers, max_size=6), numbers)
    def test_pull_removes_all_occurrences(self, values, target):
        result = apply_update({"_id": 1, "t": list(values)},
                              {"$pull": {"t": target}})
        assert target not in result["t"]
        assert [v for v in values if v != target] == result["t"]

    @given(st.lists(numbers, max_size=6), numbers)
    def test_add_to_set_is_idempotent(self, values, item):
        doc = {"_id": 1, "t": list(values)}
        once = apply_update(doc, {"$addToSet": {"t": item}})
        twice = apply_update(once, {"$addToSet": {"t": item}})
        assert once["t"] == twice["t"]
        assert once["t"].count(item) <= max(1, values.count(item))

    @given(numbers, numbers)
    def test_min_max_bracket(self, current, bound):
        low = apply_update({"_id": 1, "n": current}, {"$min": {"n": bound}})
        high = apply_update({"_id": 1, "n": current}, {"$max": {"n": bound}})
        assert low["n"] == min(current, bound)
        assert high["n"] == max(current, bound)


class TestOplogConsistency:
    @given(st.lists(st.tuples(st.sampled_from(["save", "delete"]),
                              st.integers(0, 5), numbers),
                    max_size=25))
    @settings(max_examples=50, deadline=None)
    def test_replaying_oplog_rebuilds_collection(self, ops):
        """The oplog is a complete change history: replaying it into an
        empty map reconstructs the collection's exact state."""
        collection = Collection("source")
        for kind, key, value in ops:
            if kind == "save":
                collection.save({"_id": key, "v": value})
            elif key in collection:
                collection.delete(key)
        replayed = {}
        for entry in collection.oplog.read_from(1):
            if entry.kind is WriteKind.DELETE:
                replayed.pop(entry.key, None)
            else:
                replayed[entry.key] = entry.after_image
        expected = {key: collection.get(key) for key in collection.all_keys()}
        assert replayed == expected

    @given(st.lists(st.tuples(st.integers(0, 4), numbers), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_versions_strictly_increase_per_key(self, ops):
        collection = Collection("versions")
        for key, value in ops:
            collection.save({"_id": key, "v": value})
        last_seen = {}
        for entry in collection.oplog.read_from(1):
            previous = last_seen.get(entry.key, 0)
            assert entry.version == previous + 1
            last_seen[entry.key] = entry.version
