"""Client-side resilience: retry with backoff, timeouts, circuit breaker.

The paper keeps application servers stateless towards the cluster: a
subscribe or write that fails at the event layer can simply be retried,
because versioned writes and idempotent client materialization absorb
any duplicate the retry produces.  These tests pin the retry loop, the
deadline behaviour, and the circuit breaker's interplay with the
heartbeat-based outage detection (Section 5.1).
"""

import pytest

from repro.core.client import CircuitBreaker
from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.errors import (
    CircuitOpenError,
    InjectedFaultError,
    OperationTimeoutError,
)
from repro.event.broker import Broker
from repro.runtime.execution import ExecutionConfig, InlineExecutionModel
from repro.runtime.faults import FaultPlan
from repro.types import MatchType


class ManualClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class Harness:
    """One inline cluster + app server, torn down in reverse order."""

    def __init__(self, plan=None, clock=None, **config_overrides):
        self.model = InlineExecutionModel(
            ExecutionConfig(mode="inline", seed=1, fault_plan=plan)
        )
        self.broker = Broker(execution=self.model)
        self.config = InvaliDBConfig(
            clock=clock if clock is not None else ManualClock(),
            client_rng_seed=99,
            **config_overrides,
        )
        self.cluster = InvaliDBCluster(self.broker, self.config).start()
        self.app = AppServer("resil-app", self.broker, config=self.config)

    def close(self):
        self.app.close()
        self.cluster.stop()
        self.broker.close()
        self.model.shutdown()


def make_app(plan=None, clock=None, **config_overrides):
    harness = Harness(plan=plan, clock=clock, **config_overrides)
    return harness.app, harness.broker, harness


class TestRetryWithBackoff:
    def test_transient_errors_are_retried_to_success(self):
        # The first two publishes on the query channel fail; the retry
        # loop absorbs them and the subscription activates normally.
        plan = FaultPlan().rule(
            "channel", "invalidb:queries*", "error", max_count=2
        )
        app, broker, harness = make_app(plan=plan)
        try:
            subscription = app.subscribe("items", {"v": {"$gte": 0}})
            assert broker.drain()
            app.insert("items", {"_id": 1, "v": 5})
            assert broker.drain()
            assert subscription.result() == [{"_id": 1, "v": 5}]
            stats = app.client.stats()
            assert stats["publish_retries"] == 2
            assert stats["publish_failures"] == 2
            assert stats["backoff_waited"] > 0.0
            assert stats["circuit"]["state"] == CircuitBreaker.CLOSED
        finally:
            harness.close()

    def test_backoff_is_virtual_under_inline_model(self):
        # Deterministic model: backoff is recorded, never slept, and
        # the jitter comes from the seeded client RNG (reproducible).
        waited = []
        for _ in range(2):
            app, broker, harness = make_app(plan=FaultPlan().rule(
                "channel", "invalidb:writes*", "error", max_count=3
            ))
            try:
                app.insert("items", {"_id": 1, "v": 1})
                waited.append(app.client.stats()["backoff_waited"])
            finally:
                harness.close()
        assert waited[0] == waited[1] > 0.0

    def test_exhausted_retries_raise_the_last_error(self):
        plan = FaultPlan().rule("channel", "invalidb:writes*", "error")
        app, broker, harness = make_app(plan=plan, publish_max_retries=2)
        try:
            with pytest.raises(InjectedFaultError):
                app.insert("items", {"_id": 1, "v": 1})
            stats = app.client.stats()
            assert stats["publish_retries"] == 2
            assert stats["publish_failures"] == 3  # initial + 2 retries
        finally:
            harness.close()

    def test_retry_disabled_fails_fast(self):
        plan = FaultPlan().rule(
            "channel", "invalidb:writes*", "error", max_count=1
        )
        app, broker, harness = make_app(plan=plan, client_retry=False)
        try:
            with pytest.raises(InjectedFaultError):
                app.insert("items", {"_id": 1, "v": 1})
            assert app.client.stats()["publish_retries"] == 0
        finally:
            harness.close()

    def test_operation_timeout(self):
        # A deadline tighter than one backoff period: the second
        # failure lands past the deadline and surfaces as a timeout.
        plan = FaultPlan().rule("channel", "invalidb:writes*", "error")
        app, broker, harness = make_app(
            plan=plan, publish_timeout=1e-9, publish_max_retries=10
        )
        try:
            with pytest.raises(OperationTimeoutError) as excinfo:
                app.insert("items", {"_id": 1, "v": 1})
            assert excinfo.value.operation == "write"
            assert app.client.stats()["publish_timeouts"] == 1
        finally:
            harness.close()


class TestCircuitBreaker:
    def test_state_machine(self):
        breaker = CircuitBreaker(threshold=3, reset_interval=5.0)
        assert breaker.allow(0.0)
        for _ in range(3):
            breaker.record_failure(10.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        assert not breaker.allow(11.0)  # still cooling down
        assert breaker.stats()["rejections"] == 1
        assert breaker.allow(15.0)  # past reset: half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_failure(15.0)  # probe failed: re-open at once
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2
        assert breaker.allow(20.0)
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.consecutive_failures == 0

    def test_breaker_trips_and_rejects_operations(self):
        clock = ManualClock()
        plan = FaultPlan().rule("channel", "invalidb:writes*", "error")
        app, broker, harness = make_app(
            plan=plan, clock=clock,
            publish_max_retries=1, circuit_breaker_threshold=2,
            circuit_breaker_reset=60.0,
        )
        try:
            with pytest.raises(InjectedFaultError):
                app.insert("items", {"_id": 1, "v": 1})
            assert app.client.stats()["circuit"]["state"] == (
                CircuitBreaker.OPEN
            )
            # While open, operations are rejected without touching the
            # broker at all.
            with pytest.raises(CircuitOpenError):
                app.insert("items", {"_id": 2, "v": 2})
        finally:
            harness.close()

    def test_half_open_probe_recovers(self):
        clock = ManualClock()
        plan = FaultPlan().rule(
            "channel", "invalidb:writes*", "error", max_count=2
        )
        app, broker, harness = make_app(
            plan=plan, clock=clock,
            publish_max_retries=0, circuit_breaker_threshold=2,
            circuit_breaker_reset=30.0,
        )
        try:
            for key in (1, 2):
                with pytest.raises(InjectedFaultError):
                    app.insert("items", {"_id": key, "v": key})
            assert app.client.stats()["circuit"]["state"] == (
                CircuitBreaker.OPEN
            )
            clock.advance(31.0)  # cooldown over: probe allowed
            app.insert("items", {"_id": 3, "v": 3})
            assert app.client.stats()["circuit"]["state"] == (
                CircuitBreaker.CLOSED
            )
        finally:
            harness.close()

    def test_open_breaker_terminates_subscriptions_via_heartbeat(self):
        clock = ManualClock()
        plan = FaultPlan().rule(
            "channel", "invalidb:writes*", "error", after=1
        )
        app, broker, harness = make_app(
            plan=plan, clock=clock,
            publish_max_retries=1, circuit_breaker_threshold=2,
            circuit_breaker_reset=300.0,
        )
        try:
            subscription = app.subscribe("items", {"v": {"$gte": 0}})
            assert broker.drain()
            app.insert("items", {"_id": 1, "v": 1})  # clean publish
            assert broker.drain()
            with pytest.raises(InjectedFaultError):
                app.insert("items", {"_id": 2, "v": 2})
            assert not app.client.check_heartbeat()
            errors = [
                n for n in subscription.notifications
                if n.match_type is MatchType.ERROR
            ]
            assert errors and "circuit breaker" in errors[-1].error
            assert subscription.closed
        finally:
            harness.close()
