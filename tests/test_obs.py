"""Unit tests for the observability subsystem (``repro.obs``).

Covers the metrics registry (counters, gauges, streaming log-bucket
histograms and their merge/percentile math), the trace/span helpers,
the tracer's deterministic head sampling and slow-event log, the
telemetry facade and its config resolution, the exporters (JSON,
Prometheus text format, slow-event rendering) and the cluster
inspector — plus the ``python -m repro inspect`` CLI entry point.
"""

import json
import math
import re

import pytest

from repro.core.config import InvaliDBConfig
from repro.errors import ClusterConfigError
from repro.obs.export import (
    format_slow_events,
    slow_events,
    to_json,
    to_prometheus,
)
from repro.obs.inspector import render
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetryConfig,
    build_telemetry,
)
from repro.obs.tracing import (
    DELIVER,
    FILTER,
    PUBLISH,
    Tracer,
    begin_span,
    end_span,
    fork,
    is_complete,
    new_trace,
    span_names,
    spans_of,
    total_duration,
    trace_of,
)


class TestCounterAndGauge:
    def test_counter_increments(self):
        counter = Counter("writes")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == {"type": "counter", "value": 5}

    def test_gauge_last_write_wins(self):
        gauge = Gauge("depth")
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5
        assert gauge.snapshot() == {"type": "gauge", "value": 1.5}


class TestHistogram:
    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", base=0.0)
        with pytest.raises(ValueError):
            Histogram("h", growth=1.0)
        with pytest.raises(ValueError):
            Histogram("h", buckets=1)

    def test_empty_snapshot_is_nan(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert math.isnan(snap["p50"]) and math.isnan(snap["min"])

    def test_exact_fields_and_bounded_percentile_error(self):
        hist = Histogram("h", base=1e-6, growth=1.25)
        values = [0.001 * (i + 1) for i in range(100)]
        hist.record_many(values)
        snap = hist.snapshot()
        assert snap["count"] == 100
        assert snap["sum"] == pytest.approx(sum(values))
        assert snap["min"] == pytest.approx(min(values))
        assert snap["max"] == pytest.approx(max(values))
        # A percentile reports its bucket's upper bound: never below
        # the true quantile, and within one growth factor above it.
        for quantile in (0.50, 0.95, 0.99):
            true = values[max(0, math.ceil(quantile * 100) - 1)]
            reported = hist.percentile(quantile)
            assert true <= reported <= true * 1.25 + 1e-12

    def test_max_caps_top_percentile(self):
        hist = Histogram("h")
        hist.record(0.010)
        # One sample: every percentile is the exact max, not the
        # (larger) bucket bound.
        assert hist.percentile(0.99) == pytest.approx(0.010)

    def test_overflow_lands_in_last_bucket(self):
        hist = Histogram("h", base=1e-3, growth=2.0, buckets=4)
        hist.record(1e9)
        assert hist.count == 1
        assert hist.max == pytest.approx(1e9)  # extrema stay exact
        # The percentile collapses to the last bucket's bound — the
        # price of fixed memory when a value overflows the geometry.
        assert hist.percentile(0.5) == pytest.approx(1e-3 * 2.0 ** 3)

    def test_percentile_since_sees_only_the_interval(self):
        # The all-time p99 never forgets a transient; the windowed
        # read must.  Record a slow era, snapshot, then a fast era:
        # the windowed p99 reflects only the fast era.
        hist = Histogram("h", base=1e-6, growth=1.25)
        hist.record_many([0.5] * 100)
        baseline = hist.counts()
        assert hist.percentile(0.99) >= 0.5
        hist.record_many([0.001] * 100)
        windowed = hist.percentile_since(baseline, 0.99)
        assert 0.001 <= windowed <= 0.001 * 1.25 + 1e-12
        # ...while the cumulative view still reports the slow era.
        assert hist.percentile(0.99) >= 0.5

    def test_percentile_since_empty_interval_is_nan(self):
        hist = Histogram("h")
        hist.record(0.010)
        baseline = hist.counts()
        assert math.isnan(hist.percentile_since(baseline, 0.99))

    def test_merge_adds_counts_and_extrema(self):
        left, right = Histogram("h"), Histogram("h")
        left.record_many([0.001, 0.002])
        right.record_many([0.004, 0.0005])
        left.merge(right)
        assert left.count == 4
        assert left.min == pytest.approx(0.0005)
        assert left.max == pytest.approx(0.004)
        assert left.sum == pytest.approx(0.0075)

    def test_merge_rejects_different_geometry(self):
        with pytest.raises(ValueError):
            Histogram("h", growth=1.25).merge(Histogram("h", growth=2.0))

    def test_cumulative_buckets_monotone(self):
        hist = Histogram("h")
        hist.record_many([0.001, 0.001, 0.01, 0.1])
        buckets = hist.cumulative_buckets()
        bounds = [bound for bound, _ in buckets]
        counts = [count for _, count in buckets]
        assert bounds == sorted(bounds)
        assert counts == sorted(counts)
        assert counts[-1] == 4


class TestRegistry:
    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a", node="1") is not registry.counter("a")
        assert (registry.histogram("h", stage="filter")
                is registry.histogram("h", stage="filter"))

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_snapshot_groups_labeled_series(self):
        registry = MetricsRegistry()
        registry.counter("plain").inc(2)
        registry.counter("fam", node="0").inc()
        registry.counter("fam", node="1").inc(3)
        snap = registry.snapshot()
        assert snap["plain"]["value"] == 2
        values = {entry["labels"]["node"]: entry["value"]
                  for entry in snap["fam"]}
        assert values == {"0": 1, "1": 3}

    def test_collectors_feed_snapshot_and_broken_ones_are_skipped(self):
        registry = MetricsRegistry()
        registry.register_collector(lambda: {"bridged.value": 42})
        registry.register_collector(lambda: 1 / 0)
        snap = registry.snapshot()
        assert snap["bridged.value"] == 42


class TestNullHandles:
    def test_null_handles_are_shared_noops(self):
        telemetry = NullTelemetry()
        assert telemetry.counter("a") is NULL_COUNTER
        assert telemetry.gauge("b") is NULL_GAUGE
        assert telemetry.histogram("c") is NULL_HISTOGRAM
        NULL_COUNTER.inc()
        NULL_GAUGE.set(9.0)
        NULL_HISTOGRAM.record(1.0)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0.0
        assert math.isnan(NULL_HISTOGRAM.percentile(0.5))
        assert telemetry.snapshot() == {}
        assert NULL_TELEMETRY.tracer.start("write", 1, 0.0) is None


class TestTraceHelpers:
    def test_span_lifecycle(self):
        trace = new_trace("t-1", "write", 7, 1.0)
        begin_span(trace, PUBLISH, 1.0)
        assert not is_complete(trace)
        end_span(trace, PUBLISH, 2.0)
        begin_span(trace, FILTER, 2.0)
        end_span(trace, FILTER, 2.5)
        assert is_complete(trace)
        assert span_names(trace) == [PUBLISH, FILTER]
        assert spans_of(trace) == [(PUBLISH, 1.0, 2.0), (FILTER, 2.0, 2.5)]
        assert total_duration(trace) == pytest.approx(1.5)

    def test_end_span_closes_most_recent_and_is_idempotent(self):
        trace = new_trace("t-1", "write", 7, 0.0)
        begin_span(trace, FILTER, 1.0)
        end_span(trace, FILTER, 2.0)
        end_span(trace, FILTER, 99.0)  # already closed: no effect
        end_span(trace, DELIVER, 3.0)  # never opened: no effect
        assert spans_of(trace) == [(FILTER, 1.0, 2.0)]

    def test_fork_isolates_branches(self):
        trace = new_trace("t-1", "write", 7, 0.0)
        begin_span(trace, PUBLISH, 0.0)
        end_span(trace, PUBLISH, 1.0)
        branch = fork(trace)
        begin_span(branch, DELIVER, 1.0)
        assert span_names(trace) == [PUBLISH]
        assert span_names(branch) == [PUBLISH, DELIVER]
        assert fork(None) is None

    def test_trace_of_is_defensive(self):
        trace = new_trace("t-1", "write", 7, 0.0)
        assert trace_of({"trace": trace}) is trace
        assert trace_of({"trace": "corrupted"}) is None
        assert trace_of({"trace": {"spans": "oops"}}) is None
        assert trace_of({"no": "trace"}) is None
        assert trace_of(b"not a dict") is None
        assert trace_of(None) is None

    def test_helpers_accept_none(self):
        begin_span(None, PUBLISH, 0.0)
        end_span(None, PUBLISH, 0.0)


class TestTracer:
    def test_sampling_is_deterministic_one_in_period(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry, sample_rate=0.25)
        sampled = [tracer.start("write", i, 0.0) for i in range(20)]
        carried = [trace is not None for trace in sampled]
        assert carried == [i % 4 == 0 for i in range(20)]
        assert tracer.started == 5
        assert tracer.sampled_out == 15

    def test_disabled_tracer_returns_none(self):
        tracer = Tracer(MetricsRegistry(), enabled=False)
        assert tracer.start("write", 1, 0.0) is None

    def test_complete_records_histograms_and_transcript(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry, slow_threshold=10.0)
        trace = tracer.start("write", 1, 0.0)
        begin_span(trace, PUBLISH, 0.0)
        end_span(trace, PUBLISH, 0.5)
        tracer.complete(trace, 0.5)
        assert tracer.completed == 1
        assert list(tracer.transcripts) == [trace]
        assert registry.histogram("trace.e2e_seconds").count == 1
        assert tracer.stats()["slow_events"] == 0
        tracer.complete(None, 1.0)  # untraced write: no-op
        assert tracer.completed == 1

    def test_slow_traces_logged_with_span_breakdown(self):
        tracer = Tracer(MetricsRegistry(), slow_threshold=0.1)
        trace = tracer.start("write", 9, 0.0)
        begin_span(trace, PUBLISH, 0.0)
        end_span(trace, PUBLISH, 0.2)
        begin_span(trace, FILTER, 0.2)  # left open: closed at complete
        tracer.complete(trace, 0.3)
        assert len(tracer.slow_events) == 1
        event = tracer.slow_events[0]
        assert event["trace_id"] == trace["id"]
        assert event["total_seconds"] == pytest.approx(0.2)
        assert [span["name"] for span in event["spans"]] == [PUBLISH, FILTER]


class TestTelemetryFacade:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(trace_sample_rate=0.0)
        with pytest.raises(ValueError):
            TelemetryConfig(trace_sample_rate=1.5)
        with pytest.raises(ValueError):
            TelemetryConfig(slow_trace_threshold=-1.0)
        with pytest.raises(ValueError):
            TelemetryConfig(transcript_capacity=0)

    def test_build_telemetry_resolution(self):
        assert build_telemetry(None) is NULL_TELEMETRY
        assert build_telemetry(False) is NULL_TELEMETRY
        assert build_telemetry(True).enabled
        assert build_telemetry(
            TelemetryConfig(enabled=False)) is NULL_TELEMETRY
        live = Telemetry()
        assert build_telemetry(live) is live
        built = build_telemetry(TelemetryConfig(trace_sample_rate=1.0))
        assert built.tracer.sample_period == 1
        with pytest.raises(TypeError):
            build_telemetry("yes please")

    def test_bind_clock_swaps_time_source(self):
        telemetry = Telemetry()
        telemetry.bind_clock(lambda: 123.0)
        assert telemetry.now() == 123.0

    def test_invalidb_config_rejects_bad_telemetry(self):
        with pytest.raises(ClusterConfigError):
            InvaliDBConfig(telemetry="enabled")

    def test_histogram_uses_configured_geometry(self):
        telemetry = Telemetry(TelemetryConfig(histogram_growth=1.5))
        assert telemetry.histogram("h").growth == 1.5


class TestExporters:
    def build(self):
        telemetry = Telemetry(TelemetryConfig(slow_trace_threshold=0.05))
        telemetry.counter("broker.published", broker="b").inc(7)
        telemetry.gauge("mailbox.depth", mailbox="m").set(2.0)
        telemetry.histogram("trace.e2e_seconds").record_many(
            [0.001, 0.002, 0.004])
        return telemetry

    def test_to_json_round_trips(self):
        snap = json.loads(to_json(self.build()))
        assert snap["broker.published"][0]["value"] == 7
        assert snap["trace.e2e_seconds"]["count"] == 3
        assert snap["trace"]["completed"] == 0

    def test_prometheus_text_format(self):
        text = to_prometheus(self.build())
        assert "# TYPE broker_published counter" in text
        assert 'broker_published{broker="b"} 7' in text
        assert "# TYPE mailbox_depth gauge" in text
        assert "# TYPE trace_e2e_seconds histogram" in text
        assert 'trace_e2e_seconds_bucket{le="+Inf"} 3' in text
        assert "trace_e2e_seconds_count 3" in text

    def test_prometheus_when_disabled(self):
        assert to_prometheus(NULL_TELEMETRY) == "# telemetry disabled\n"

    def test_slow_event_rendering(self):
        telemetry = self.build()
        trace = telemetry.tracer.start("write", 3, 0.0)
        begin_span(trace, PUBLISH, 0.0)
        end_span(trace, PUBLISH, 0.2)
        telemetry.tracer.complete(trace, 0.2)
        events = slow_events(telemetry)
        assert len(events) == 1
        text = format_slow_events(telemetry)
        assert trace["id"] in text and "publish=" in text
        assert slow_events(NULL_TELEMETRY) == []
        assert "no slow traces" in format_slow_events(NULL_TELEMETRY)


class TestInspector:
    def test_render_empty_snapshot(self):
        text = render({})
        assert "InvaliDB cluster inspector" in text

    def test_render_sections(self):
        snapshot = {
            "config": {"query_partitions": 2, "write_partitions": 2},
            "matching": [{
                "node": "matching[0]", "query_partition": 0,
                "write_partition": 0, "queries": 3, "writes_processed": 10,
                "matched_operations": 4, "candidates_considered": 8,
                "candidates_pruned": 16, "memo_hits": 1, "memo_misses": 3,
            }],
            "sorting": [{
                "node": "sorting[0]", "query_partition": 0, "queries": 1,
                "events_processed": 5, "renewals_requested": 0,
                "window_comparisons": 42,
            }],
            "notifications_sent": 7,
            "notifications_coalesced": 3,
            "mailboxes": [{
                "name": "matching[0]", "depth": 0, "enqueued": 10,
                "processed": 10, "dropped": 0,
            }],
            "telemetry": {
                "trace.e2e_seconds": {
                    "count": 4, "p50": 0.001, "p95": 0.002, "p99": 0.002,
                    "max": 0.003,
                },
                "trace.span_seconds": [{
                    "labels": {"stage": "filter"}, "count": 4,
                    "p50": 0.0005, "p95": 0.001, "p99": 0.001, "max": 0.001,
                }],
            },
            "faults": {"injected": 2, "dropped": 1},
            "supervisor": {"restarts": 1},
        }
        text = render(snapshot)
        assert "matching grid" in text
        assert "sorting stage" in text
        assert "mailboxes" in text
        assert "write-path latency" in text
        assert "end-to-end" in text and "filter" in text
        assert "faults.injected" in text
        assert "supervisor.restarts" in text
        assert "cmps" in text and "42" in text
        assert "cluster.notifications_coalesced" in text
        # Pruned 16 of 24 candidate evaluations.
        assert "66.67" in text


class TestInspectCli:
    def test_inspect_renders_grid_table(self, capsys):
        from repro.__main__ import main
        assert main(["inspect", "--writes", "30", "--grid", "2x2"]) == 0
        out = capsys.readouterr().out
        assert "matching grid" in out
        assert "write-path latency" in out

    def test_inspect_json_parses(self, capsys):
        from repro.__main__ import main
        assert main(["inspect", "--writes", "12", "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["trace"]["completed"] > 0

    def test_inspect_prometheus(self, capsys):
        from repro.__main__ import main
        assert main(["inspect", "--writes", "12", "--prometheus"]) == 0
        assert "# TYPE" in capsys.readouterr().out

    def test_inspect_slow(self, capsys):
        from repro.__main__ import main
        assert main(["inspect", "--writes", "12", "--slow"]) == 0
        assert "slow" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Strict Prometheus text-format validation (exporter hardening)
# ---------------------------------------------------------------------------

_PROM_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
#: A label value may contain only escaped backslash/quote/newline plus
#: anything that is not a raw backslash, quote or newline.
_PROM_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:\\\\|\\"|\\n|[^"\\\n])*"'
_PROM_SAMPLE_RE = re.compile(
    rf"^({_PROM_NAME})(?:\{{{_PROM_LABEL}(?:,{_PROM_LABEL})*\}})? "
    rf"(?:NaN|[+-]Inf|[+-]?[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?)$"
)
_PROM_HELP_RE = re.compile(rf"^# HELP ({_PROM_NAME}) [^\n]+$")
_PROM_TYPE_RE = re.compile(
    rf"^# TYPE ({_PROM_NAME}) (counter|gauge|histogram)$"
)


def check_prometheus_text(text):
    """Strict structural checker for the 0.0.4 text exposition format.

    Asserts every line is a well-formed HELP/TYPE comment or sample,
    HELP directly precedes TYPE exactly once per family, label values
    contain no raw backslash/quote/newline, and every sample belongs
    to a declared family.  Returns {family: type}.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    families = {}
    pending_help = None
    for line in text.rstrip("\n").split("\n"):
        if line.startswith("# HELP "):
            match = _PROM_HELP_RE.match(line)
            assert match, f"malformed HELP line: {line!r}"
            name = match.group(1)
            assert name not in families, f"duplicate family {name}"
            assert pending_help is None, f"HELP {name} without a TYPE"
            pending_help = name
            continue
        if line.startswith("# TYPE "):
            match = _PROM_TYPE_RE.match(line)
            assert match, f"malformed TYPE line: {line!r}"
            name = match.group(1)
            assert pending_help == name, (
                f"TYPE {name} must directly follow its HELP line"
            )
            families[name] = match.group(2)
            pending_help = None
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = _PROM_SAMPLE_RE.match(line)
        assert match, f"malformed sample line: {line!r}"
        sample = match.group(1)
        base = re.sub(r"_(bucket|sum|count)$", "", sample)
        assert sample in families or (
            base in families and families[base] == "histogram"
        ), f"sample for undeclared family: {line!r}"
    assert pending_help is None, "trailing HELP without a TYPE"
    return families


class TestPrometheusStrictFormat:
    #: A label value with every character class the exposition format
    #: requires escaping for, plus braces/commas that must pass through.
    NASTY = 'he said "hi", used a \\ backslash,\nand a {brace}'

    def build(self):
        telemetry = Telemetry(TelemetryConfig())
        telemetry.registry.describe(
            "slo.breaches_total",
            "Notifications whose lag exceeded the target.",
        )
        telemetry.counter("slo.breaches_total", query=self.NASTY).inc(2)
        telemetry.gauge("mailbox.depth", mailbox="m").set(2.0)
        telemetry.histogram("trace.e2e_seconds").record_many(
            [0.001, 0.02, 3.0])
        return telemetry

    def test_every_line_parses_strictly(self):
        families = check_prometheus_text(to_prometheus(self.build()))
        assert families["slo_breaches_total"] == "counter"
        assert families["mailbox_depth"] == "gauge"
        assert families["trace_e2e_seconds"] == "histogram"

    def test_label_values_are_escaped(self):
        text = to_prometheus(self.build())
        assert '\\"hi\\"' in text
        assert "\\\\ backslash" in text
        assert "\\nand" in text
        # The raw newline must not survive into the payload: the line
        # after any sample line must not be a bare continuation.
        assert "\nand a {brace}" not in text
        check_prometheus_text(text)

    def test_help_precedes_type_and_is_stable(self):
        one = to_prometheus(self.build())
        two = to_prometheus(self.build())
        assert one == two, "exposition must be byte-stable run to run"
        assert one.count("# HELP slo_breaches_total") == 1
        assert one.index("# HELP slo_breaches_total") < one.index(
            "# TYPE slo_breaches_total")

    def test_described_and_fallback_help_text(self):
        text = to_prometheus(self.build())
        assert ("# HELP slo_breaches_total Notifications whose lag "
                "exceeded the target.") in text
        # Families nobody described get a deterministic fallback.
        assert "# HELP mailbox_depth Registry metric mailbox.depth." in text

    def test_registry_first_description_wins(self):
        registry = MetricsRegistry()
        registry.describe("m", "first")
        registry.describe("m", "second")
        assert registry.help_text("m") == "first"
        assert registry.help_text("unknown") is None


# ---------------------------------------------------------------------------
# Per-query SLO accounting
# ---------------------------------------------------------------------------


class _StaticScheme:
    def write_partition_of(self, key):
        return 0


class TestSLOAccountant:
    def build(self, now=10.0, objective=0.9):
        from repro.obs.slo import SLOAccountant
        telemetry = Telemetry(TelemetryConfig())
        state = {"now": now}
        accountant = SLOAccountant(
            telemetry, _StaticScheme(), latency_target=0.25,
            objective=objective, clock=lambda: state["now"],
        )
        return telemetry, accountant, state

    def _change(self, query_id="q1", timestamp=9.9, **kw):
        from repro.core.notifications import QueryChange
        from repro.types import MatchType
        return QueryChange(query_id=query_id, match_type=MatchType.ADD,
                           key=1, timestamp=timestamp, **kw)

    def test_lag_breach_and_burn_rate(self):
        telemetry, accountant, _ = self.build()
        accountant.observe(self._change(timestamp=9.9))  # 0.1s: within SLO
        accountant.observe(self._change(timestamp=9.0))  # 1.0s: breach
        summary = accountant.summary()
        assert summary["notifications"] == 2
        assert summary["breaches"] == 1
        # Breach fraction 0.5 over an error budget of 1 - 0.9 = 0.1.
        assert summary["burn_rate"] == pytest.approx(5.0)
        row = summary["queries"][0]
        assert row["query_id"] == "q1"
        assert row["burn_rate"] == pytest.approx(5.0)
        assert row["p99_seconds"] == pytest.approx(1.0, rel=0.2)

    def test_error_and_untimestamped_changes_are_skipped(self):
        from repro.core.notifications import QueryChange
        from repro.types import MatchType
        telemetry, accountant, _ = self.build()
        accountant.observe(QueryChange(
            query_id="q", match_type=MatchType.ERROR, key=1,
            error="renew", timestamp=5.0,
        ))
        accountant.observe(self._change(timestamp=0.0))
        assert accountant.summary()["notifications"] == 0
        assert accountant.skipped == 2

    def test_negative_lag_clamps_to_zero(self):
        telemetry, accountant, _ = self.build(now=1.0)
        accountant.observe(self._change(timestamp=2.0))
        summary = accountant.summary()
        assert summary["breaches"] == 0
        assert summary["lag_max_seconds"] == 0.0

    def test_cardinality_cap_keeps_aggregate_accounting(self, monkeypatch):
        import repro.obs.slo as slo_module
        monkeypatch.setattr(slo_module, "MAX_TRACKED_SERIES", 2)
        telemetry, accountant, _ = self.build()
        for i in range(5):
            accountant.observe(self._change(query_id=f"q{i}"))
        summary = accountant.summary()
        assert summary["notifications"] == 5  # aggregate sees them all
        assert len(summary["queries"]) == 2   # but only 2 series minted

    def test_slo_series_flow_to_prometheus(self):
        telemetry, accountant, _ = self.build()
        accountant.observe(self._change(timestamp=9.0))
        text = to_prometheus(telemetry)
        assert 'slo_notifications_total{query="q1"} 1' in text
        assert 'slo_breaches_total{query="q1"} 1' in text
        assert "# HELP slo_lag_seconds " in text
        check_prometheus_text(text)
