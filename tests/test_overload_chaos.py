"""Overload control composed with real failures.

Two scenarios the inline property suite cannot cover:

* **process model, sustained overload + hard kill** — shedding stays
  active (cluster pinned degraded) while a worker hosting a matching
  cell is SIGKILLed mid-burst; supervised recovery plus client
  re-subscription must still converge to the database;
* **threaded circuit breaker under sustained rejection** — the broker
  actively fails the write channel while the admission governor is
  rejecting over-budget writes; the breaker must trip open, reject
  fast, probe half-open after the cooldown and close again, and the
  client must reconcile once both storms pass.
"""

import os
import signal
import socket
import time

import pytest

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.event.broker import Broker
from repro.runtime.execution import ExecutionConfig, ThreadedExecutionModel
from repro.runtime.faults import FaultPlan


def settle(cluster, broker, rounds=4, timeout=10.0):
    for _ in range(rounds):
        broker.drain(timeout)
        cluster.drain(timeout)


def wait_for(predicate, timeout=8.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


@pytest.mark.skipif(
    not (hasattr(os, "fork") and hasattr(socket, "AF_UNIX")),
    reason="process execution model requires POSIX fork + socketpair",
)
class TestOverloadedWorkerKill:
    """kill -9 a worker during a shedding write burst; must converge."""

    @pytest.mark.parametrize("seed", [3, 11])
    def test_hard_kill_under_shedding_converges(self, seed):
        broker = Broker()
        config = InvaliDBConfig(
            query_partitions=2, write_partitions=2,
            execution_model="process", process_workers=2,
            retention_seconds=0.75,
            supervisor_backoff_base=0.01,
            overload_control=True,
            shedding=True,
            force_health="degraded",
            shed_coalescing_window=0.02,
            refresh_interval_seconds=0.05,
            client_rng_seed=seed,
        )
        cluster = InvaliDBCluster(broker, config).start()
        app = AppServer(f"ok-app-{seed}", broker, config=config)
        try:
            flat = app.subscribe("items", {"v": {"$gte": 0}})
            top = app.subscribe("items", {}, sort=[("v", -1)], limit=5)
            assert broker.drain(timeout=10.0)
            # A burst several times the usual chaos workload, shed the
            # whole way through (degraded pin keeps the stager and the
            # sorted snapshot-refresh path on for every write).
            for i in range(60):
                app.insert("items", {"_id": i, "v": (i * seed) % 41})
            settle(cluster, broker)

            victim = cluster._remote_cells[("matching", 0)].pid
            os.kill(victim, signal.SIGKILL)
            # Keep the pressure on straight through the outage.
            for i in range(60, 100):
                app.insert("items", {"_id": i, "v": (i * seed) % 41})
            for i in range(0, 100, 3):
                app.update("items", i, {"$inc": {"v": 100}})
            for i in range(0, 100, 9):
                app.delete("items", i)

            assert wait_for(
                lambda: cluster.supervisor.stats()["restarts"] >= 1
            ), cluster.supervisor.stats()
            settle(cluster, broker)
            # Let retention lapse so renewal cannot replay stale state,
            # then reconcile the client against the database.
            time.sleep(config.retention_seconds + 0.3)
            app.client.resubscribe_all()
            settle(cluster, broker, rounds=6)

            expected_flat = sorted(
                app.find("items", {"v": {"$gte": 0}}),
                key=lambda d: d["_id"],
            )
            expected_top = app.find("items", {}, sort=[("v", -1)],
                                    limit=5)
            assert wait_for(
                lambda: sorted(flat.result(), key=lambda d: d["_id"])
                == expected_flat
            )
            assert wait_for(lambda: top.result() == expected_top)

            pool = cluster.snapshot()["workers"]["pool"]
            assert pool["deaths"] >= 1
            health = cluster.snapshot()["health"]
            assert health["state"] == "degraded"
        finally:
            app.close()
            cluster.stop()
            broker.close()


class TestBreakerUnderRejection:
    """Threaded model: broker failures + admission rejections at once."""

    def test_half_open_recovery_while_rejections_flow(self):
        # Fail the first write publishes hard (every attempt, retries
        # included), then stop: the breaker trips, cools down, probes
        # half-open and closes on the first clean publish.
        plan = FaultPlan(seed=5).rule(
            "channel", "invalidb:writes*", "error", max_count=12,
        )
        model = ThreadedExecutionModel(ExecutionConfig(fault_plan=plan))
        broker = Broker(execution=model)
        config = InvaliDBConfig(
            query_partitions=2, write_partitions=2,
            overload_control=True,
            force_health="overloaded",
            admission_burst=2,
            admission_initial_rate=25.0,
            admission_min_rate=25.0,
            circuit_breaker_threshold=3,
            circuit_breaker_reset=0.05,
            publish_max_retries=1,
            publish_backoff_base=0.001,
            publish_backoff_max=0.002,
            client_rng_seed=5,
        )
        cluster = InvaliDBCluster(broker, config).start()
        app = AppServer("breaker-app", broker, config=config)
        client = app.client
        try:
            flat = app.subscribe("items", {"v": {"$gte": 0}})
            assert broker.drain(timeout=10.0)
            failed = 0
            for i in range(40):
                try:
                    app.insert("items", {"_id": i, "v": i})
                except Exception:  # noqa: BLE001 - breaker/publish storm
                    failed += 1
                if client._breaker.state == "open":
                    break
            assert client._breaker.stats()["trips"] >= 1
            assert failed > 0
            # Open breaker rejects instantly — no broker round-trips.
            rejected_fast = 0
            while client._breaker.state == "open" and rejected_fast < 5:
                try:
                    app.insert("items", {"_id": 1000 + rejected_fast,
                                         "v": 1})
                except Exception:  # noqa: BLE001
                    rejected_fast += 1
            # Each cooldown earns one half-open probe; early probes may
            # still hit leftover faults and re-open, but the rule's
            # max_count drains and the first clean probe closes.
            for i in range(40, 80):
                time.sleep(config.circuit_breaker_reset + 0.02)
                try:
                    app.insert("items", {"_id": i, "v": i})
                except Exception:  # noqa: BLE001
                    pass
                if client._breaker.state == "closed":
                    break
            assert client._breaker.state == "closed"
            stats = client._breaker.stats()
            assert stats["rejections"] >= 1  # fast-failed while open
            # With the event layer healthy again, a rapid burst blows
            # straight through the admission budget: the rejection /
            # retry-after / resubmit loop takes over from the breaker.
            for i in range(2000, 2030):
                app.insert("items", {"_id": i, "v": 1})
            assert wait_for(
                lambda: client.writes_rejected > 0
                and client.writes_resubmitted > 0
            ), client.stats()
            assert client.cluster_health == "overloaded"
            # Ride out the resubmit storm, then reconcile.
            assert broker.drain(timeout=10.0)
            settle(cluster, broker)
            time.sleep(0.1)
            client.resubscribe_all()
            settle(cluster, broker, rounds=6)
            expected = sorted(app.find("items", {"v": {"$gte": 0}}),
                              key=lambda d: d["_id"])
            assert wait_for(
                lambda: sorted(flat.result(), key=lambda d: d["_id"])
                == expected
            )
        finally:
            app.close()
            cluster.stop()
            broker.close()
