"""Cross-mechanism validation and tenant isolation.

* all three real-time mechanisms (poll-and-diff, log tailing, the full
  InvaliDB stack) must converge to identical results on the same write
  history — they differ in cost and latency, never in outcome;
* two tenants sharing one event layer must be fully isolated;
* the contention model reproduces the paper's 16-node anomaly.
"""

import random
import time

import pytest

from repro.baselines.log_tailing import LogTailingProvider
from repro.baselines.poll_and_diff import PollAndDiffProvider
from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer

from tests.conftest import settle


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestMechanismEquivalence:
    def test_all_three_mechanisms_converge_identically(self, broker,
                                                       cluster_factory,
                                                       app_server_factory):
        cluster = cluster_factory(2, 2)
        app = app_server_factory()
        collection = app.database.collection("events")
        filter_doc = {"v": {"$gte": 40}, "kind": {"$ne": "noise"}}

        invalidb_sub = app.subscribe("events", filter_doc)
        poll = PollAndDiffProvider(collection)
        poll_sub = poll.subscribe(filter_doc)
        tail = LogTailingProvider(collection)
        tail_sub = tail.subscribe(filter_doc)

        rng = random.Random(99)
        live = set()
        for step in range(150):
            roll = rng.random()
            if roll < 0.5 or not live:
                app.insert("events", {
                    "_id": step, "v": rng.randrange(100),
                    "kind": rng.choice(["signal", "noise"]),
                })
                live.add(step)
            elif roll < 0.8:
                key = rng.choice(sorted(live))
                app.update("events", key,
                           {"$set": {"v": rng.randrange(100)}})
            else:
                key = rng.choice(sorted(live))
                app.delete("events", key)
                live.discard(key)
        settle(cluster, broker, rounds=5)
        poll.poll_all()
        truth = {d["_id"] for d in collection.find(filter_doc)}

        # Log tailing and InvaliDB maintain state push-style; poll-and-
        # diff reconstructs from initial + diffs.
        def materialize(subscription):
            state = {d["_id"] for d in subscription.initial_result}
            for notification in subscription.notifications:
                if notification.match_type.value == "remove":
                    state.discard(notification.key)
                elif notification.document is not None:
                    state.add(notification.key)
            return state

        assert wait_for(
            lambda: {d["_id"] for d in invalidb_sub.result()} == truth
        )
        assert materialize(poll_sub) == truth
        assert materialize(tail_sub) == truth
        poll.close()
        tail.close()


class TestTenantIsolation:
    def test_two_tenants_do_not_leak(self, broker):
        config = InvaliDBConfig(query_partitions=1, write_partitions=1)
        cluster_a = InvaliDBCluster(broker, config, tenant="tenant-a").start()
        cluster_b = InvaliDBCluster(broker, config, tenant="tenant-b").start()
        app_a = AppServer("app-a", broker, config=config, tenant="tenant-a")
        app_b = AppServer("app-b", broker, config=config, tenant="tenant-b")
        try:
            sub_a = app_a.subscribe("items", {"v": {"$gte": 0}})
            sub_b = app_b.subscribe("items", {"v": {"$gte": 0}})
            app_a.insert("items", {"_id": "a1", "v": 1})
            settle(cluster_a, broker)
            settle(cluster_b, broker)
            assert wait_for(lambda: sub_a.change_count == 1)
            time.sleep(0.2)
            assert sub_b.change_count == 0
            assert len(cluster_a.active_query_ids()) == 1
            assert len(cluster_b.active_query_ids()) == 1
        finally:
            app_a.close()
            app_b.close()
            cluster_a.stop()
            cluster_b.stop()


class TestContentionModel:
    def test_contention_reproduces_large_cluster_anomaly(self):
        """With contention enabled, the 16-node cluster's tight-SLA
        capacity dips below linear while loose SLAs stay near-linear —
        the paper's Figure 4 anomaly."""
        from repro.sim.cluster_model import ClusterCosts, SimulatedInvaliDB

        contended = ClusterCosts(contention_per_node=0.02,
                                 contention_free_nodes=8)
        # 16 nodes, per-node load that a contention-free node sustains.
        free_stats = SimulatedInvaliDB(16, 1, seed=5).run(
            24000, 1000.0, duration=8.0
        )
        contended_stats = SimulatedInvaliDB(16, 1, contended, seed=5).run(
            24000, 1000.0, duration=8.0
        )
        assert contended_stats.p99 > free_stats.p99
        # Small clusters are unaffected (below the contention threshold).
        small_free = SimulatedInvaliDB(4, 1, seed=6).run(
            6000, 1000.0, duration=8.0
        )
        small_contended = SimulatedInvaliDB(4, 1, contended, seed=6).run(
            6000, 1000.0, duration=8.0
        )
        assert small_contended.p99 == pytest.approx(small_free.p99)

    def test_contention_factor_math(self):
        from repro.sim.cluster_model import ClusterCosts

        costs = ClusterCosts(contention_per_node=0.05,
                             contention_free_nodes=8)
        assert costs.contention_factor(4) == 1.0
        assert costs.contention_factor(8) == 1.0
        assert costs.contention_factor(16) == pytest.approx(1.4)
