"""Event-layer (broker) tests: pub/sub semantics, codecs, lifecycle."""

import threading
import time

import pytest

from repro.errors import BrokerClosedError, CodecError
from repro.event.broker import Broker
from repro.event.channels import (
    notification_channel,
    query_channel,
    write_channel,
)
from repro.event.codec import JsonCodec, NoopCodec


class TestPubSub:
    def test_basic_delivery(self, broker):
        received = []
        broker.subscribe("ch", lambda channel, payload: received.append(payload))
        broker.publish("ch", {"v": 1})
        broker.drain()
        assert received == [{"v": 1}]

    def test_fifo_order_per_channel(self, broker):
        received = []
        broker.subscribe("ch", lambda c, p: received.append(p))
        for i in range(50):
            broker.publish("ch", i)
        broker.drain()
        assert received == list(range(50))

    def test_no_subscriber_drops_message(self, broker):
        broker.publish("nobody", {"v": 1})
        assert broker.drain()
        assert broker.stats["delivered"] == 0
        assert broker.stats["published"] == 1

    def test_multiple_subscribers(self, broker):
        a, b = [], []
        broker.subscribe("ch", lambda c, p: a.append(p))
        broker.subscribe("ch", lambda c, p: b.append(p))
        broker.publish("ch", 1)
        broker.drain()
        assert a == [1] and b == [1]

    def test_unsubscribe(self, broker):
        received = []
        subscription = broker.subscribe("ch", lambda c, p: received.append(p))
        broker.publish("ch", 1)
        broker.drain()
        subscription.close()
        broker.publish("ch", 2)
        broker.drain()
        assert received == [1]

    def test_pattern_subscription(self, broker):
        received = []
        broker.psubscribe("invalidb:notify:*",
                          lambda c, p: received.append((c, p)))
        broker.publish(notification_channel("app-7"), "x")
        broker.publish("other", "y")
        broker.drain()
        assert received == [("invalidb:notify:app-7", "x")]

    def test_payloads_are_serialized_copies(self, broker):
        """JSON codec round-trip: subscribers never share mutable state
        with publishers (like a real network broker)."""
        received = []
        broker.subscribe("ch", lambda c, p: received.append(p))
        original = {"nested": {"v": 1}}
        broker.publish("ch", original)
        broker.drain()
        original["nested"]["v"] = 99
        assert received[0]["nested"]["v"] == 1

    def test_failing_subscriber_does_not_break_dispatch(self, broker):
        received = []

        def bad(channel, payload):
            raise RuntimeError("boom")

        broker.subscribe("ch", bad)
        broker.subscribe("ch", lambda c, p: received.append(p))
        broker.publish("ch", 1)
        broker.drain()
        assert received == [1]


class TestDelays:
    def test_delivery_delay(self):
        broker = Broker(delivery_delay=0.05)
        try:
            received = []
            broker.subscribe("ch", lambda c, p: received.append(time.monotonic()))
            start = time.monotonic()
            broker.publish("ch", 1)
            broker.drain(timeout=2.0)
            assert received and received[0] - start >= 0.045
        finally:
            broker.close()

    def test_per_channel_delay_allows_overtaking(self):
        """A fast-lane message published AFTER a slow-lane one arrives
        first — the reordering behind the paper's race conditions."""
        broker = Broker(delay_fn=lambda ch: 0.05 if ch == "slow" else 0.0)
        try:
            order = []
            broker.subscribe("slow", lambda c, p: order.append("slow"))
            broker.subscribe("fast", lambda c, p: order.append("fast"))
            broker.publish("slow", 1)
            broker.publish("fast", 1)
            broker.drain(timeout=2.0)
            assert order == ["fast", "slow"]
        finally:
            broker.close()

    def test_same_channel_order_preserved_despite_delay(self):
        broker = Broker(delay_fn=lambda ch: 0.02)
        try:
            received = []
            broker.subscribe("ch", lambda c, p: received.append(p))
            for value in range(10):
                broker.publish("ch", value)
            broker.drain(timeout=2.0)
            assert received == list(range(10))
        finally:
            broker.close()


class TestLifecycle:
    def test_closed_broker_rejects_operations(self):
        broker = Broker()
        broker.close()
        with pytest.raises(BrokerClosedError):
            broker.publish("ch", 1)
        with pytest.raises(BrokerClosedError):
            broker.subscribe("ch", lambda c, p: None)

    def test_close_is_idempotent(self):
        broker = Broker()
        broker.close()
        broker.close()

    def test_context_manager(self):
        with Broker() as broker:
            broker.publish("ch", 1)


class TestCodecs:
    def test_json_roundtrip(self):
        codec = JsonCodec()
        payload = {"a": [1, 2.5, None, "x"], "b": {"c": True}}
        assert codec.decode(codec.encode(payload)) == payload

    def test_json_rejects_unserializable(self):
        with pytest.raises(CodecError):
            JsonCodec().encode({"f": object()})

    def test_json_rejects_malformed_wire(self):
        with pytest.raises(CodecError):
            JsonCodec().decode(b"{not json")

    def test_noop_passthrough(self):
        codec = NoopCodec()
        sentinel = object()
        assert codec.decode(codec.encode(sentinel)) is sentinel


class TestChannelNames:
    def test_channel_names_are_disjoint(self):
        names = {
            write_channel("t"), query_channel("t"), notification_channel("t")
        }
        assert len(names) == 3

    def test_tenant_isolation(self):
        assert write_channel("a") != write_channel("b")


class TestUnderLoad:
    """Satellite scenarios: subscription churn, overlapping subscriber
    kinds, delayed in-flight messages and bounded-queue overflow."""

    def test_publish_while_unsubscribing(self, broker):
        """Closing a subscription concurrently with a publish storm must
        neither crash nor deliver after close completes on all paths;
        double-close from racing threads unsubscribes exactly once."""
        received = []
        lock = threading.Lock()

        def listener(channel, payload):
            with lock:
                received.append(payload)

        subscriptions = [broker.subscribe("ch", listener) for _ in range(8)]
        stop = threading.Event()

        def publisher():
            value = 0
            while not stop.is_set():
                broker.publish("ch", value)
                value += 1

        def closer(subscription):
            subscription.close()
            subscription.close()  # idempotent from this thread...

        publisher_thread = threading.Thread(target=publisher, daemon=True)
        publisher_thread.start()
        # ...and racing closers: every subscription closed from two
        # threads at once.
        closers = [
            threading.Thread(target=closer, args=(subscription,))
            for subscription in subscriptions
            for _ in range(2)
        ]
        for thread in closers:
            thread.start()
        for thread in closers:
            thread.join()
        stop.set()
        publisher_thread.join(timeout=5.0)
        assert broker.drain(timeout=5.0)
        assert all(not s.active for s in subscriptions)
        # No listener runs after drain: all registrations are gone.
        before = len(received)
        broker.publish("ch", "late")
        assert broker.drain(timeout=5.0)
        assert len(received) == before

    def test_pattern_and_exact_subscriber_on_same_channel(self, broker):
        exact, pattern = [], []
        broker.subscribe("invalidb:notify:app-1",
                         lambda c, p: exact.append(p))
        broker.psubscribe("invalidb:notify:*",
                          lambda c, p: pattern.append(p))
        for value in range(20):
            broker.publish("invalidb:notify:app-1", value)
        assert broker.drain(timeout=5.0)
        assert exact == list(range(20))
        assert pattern == list(range(20))
        assert broker.stats["delivered"] == 40

    def test_drain_waits_for_delayed_in_flight_message(self):
        """drain() must cover a message still sitting on the delay heap
        — not report quiescence just because the queue looks empty."""
        broker = Broker(delay_fn=lambda ch: 0.1 if ch == "slow" else 0.0)
        try:
            received = []
            broker.subscribe("slow", lambda c, p: received.append(p))
            broker.publish("slow", "late-bloomer")
            assert received == []  # still in delayed flight
            assert broker.drain(timeout=5.0)
            assert received == ["late-bloomer"]
        finally:
            broker.close()

    def test_bounded_queue_error_policy_surfaces_saturation(self):
        from repro.errors import QueueOverflowError
        from repro.runtime.execution import ExecutionConfig

        broker = Broker(execution=ExecutionConfig(
            queue_capacity=2, backpressure="error", max_batch=1
        ))
        try:
            gate = threading.Event()
            broker.subscribe("ch", lambda c, p: gate.wait(timeout=5.0))
            with pytest.raises(QueueOverflowError):
                # The dispatcher is stuck on the first message; the
                # bounded mailbox fills and the publisher fails fast.
                for value in range(50):
                    broker.publish("ch", value)
            gate.set()
            broker.drain(timeout=5.0)
        finally:
            broker.close()

    def test_bounded_queue_drop_oldest_sheds_load(self):
        from repro.runtime.execution import ExecutionConfig

        broker = Broker(execution=ExecutionConfig(
            queue_capacity=4, backpressure="drop_oldest", max_batch=1
        ))
        try:
            gate = threading.Event()
            received = []

            def listener(channel, payload):
                gate.wait(timeout=5.0)
                received.append(payload)

            broker.subscribe("ch", listener)
            for value in range(50):
                broker.publish("ch", value)
            gate.set()
            assert broker.drain(timeout=5.0)
            # Load was shed, the freshest messages survived.
            assert broker.stats["dropped"] > 0
            assert len(received) < 50
            assert received[-1] == 49
        finally:
            broker.close()


class TestConcurrency:
    def test_concurrent_publishers_keep_all_messages(self, broker):
        received = []
        lock = threading.Lock()

        def listener(channel, payload):
            with lock:
                received.append(payload)

        broker.subscribe("ch", listener)

        def publish_batch(offset):
            for i in range(100):
                broker.publish("ch", offset + i)

        threads = [
            threading.Thread(target=publish_batch, args=(base,))
            for base in (0, 1000, 2000)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        broker.drain(timeout=5.0)
        assert len(received) == 300
        assert set(received) == (
            set(range(100)) | set(range(1000, 1100)) | set(range(2000, 2100))
        )
