"""Wire-format round-trip tests for everything crossing the event layer.

"The event layer ... handles data transmissions with entirely opaque
payloads" (Section 5.3) — so every message must survive JSON encoding.
"""

import pytest

from repro.core.cluster import (
    deserialize_after_image,
    deserialize_query,
    serialize_after_image,
    serialize_query,
)
from repro.core.notifications import (
    QueryChange,
    deserialize_change,
    serialize_change,
)
from repro.event.codec import JsonCodec
from repro.query.engine import Query
from repro.types import AfterImage, MatchType, WriteKind

CODEC = JsonCodec()


def json_roundtrip(payload):
    return CODEC.decode(CODEC.encode(payload))


class TestQuerySerialization:
    @pytest.mark.parametrize(
        "query",
        [
            Query({"a": 1}),
            Query({"a": {"$gte": 1, "$lt": 9}}, collection="articles"),
            Query({"$or": [{"a": 1}, {"b": {"$in": [1, 2]}}]}),
            Query({}, sort=[("year", -1), ("title", 1)], limit=3, offset=2),
            Query({"name": {"$regex": "^a", "$options": "i"}}),
            Query({"$text": {"$search": "real time"}}),
            Query({"loc": {"$geoWithin": {"$box": [[0, 0], [1, 1]]}}}),
        ],
    )
    def test_roundtrip_preserves_identity(self, query):
        wire = json_roundtrip(serialize_query(query))
        restored = deserialize_query(wire)
        assert restored == query
        assert restored.hash == query.hash
        assert restored.query_id == query.query_id

    def test_sort_directions_survive(self):
        query = Query({}, sort=[("a", -1)], limit=1)
        restored = deserialize_query(json_roundtrip(serialize_query(query)))
        assert restored.sort.fields == query.sort.fields


class TestAfterImageSerialization:
    def test_update_roundtrip(self):
        after = AfterImage(7, 3, WriteKind.UPDATE,
                           {"_id": 7, "v": [1, {"x": None}]},
                           collection="c", timestamp=12.5)
        restored = deserialize_after_image(
            json_roundtrip(serialize_after_image(after))
        )
        assert restored == after

    def test_delete_roundtrip(self):
        after = AfterImage("key", 9, WriteKind.DELETE, None)
        restored = deserialize_after_image(
            json_roundtrip(serialize_after_image(after))
        )
        assert restored.is_delete and restored.version == 9

    def test_wire_form_is_tagged_as_write(self):
        after = AfterImage(1, 1, WriteKind.INSERT, {"_id": 1})
        assert serialize_after_image(after)["kind"] == "write"


class TestChangeSerialization:
    @pytest.mark.parametrize(
        "change",
        [
            QueryChange("q1", MatchType.ADD, key=1, document={"_id": 1},
                        index=0),
            QueryChange("q1", MatchType.CHANGE_INDEX, key="k",
                        document={"_id": "k"}, index=2, old_index=5,
                        timestamp=1.25),
            QueryChange("q1", MatchType.REMOVE, key=1,
                        document={"_id": 1, "v": 2}),
            QueryChange("q1", MatchType.ERROR, key=None,
                        error="slack exhausted"),
        ],
    )
    def test_roundtrip(self, change):
        restored = deserialize_change(json_roundtrip(serialize_change(change)))
        assert restored == change

    def test_error_flag_survives(self):
        change = QueryChange("q1", MatchType.ERROR, error="x")
        restored = deserialize_change(json_roundtrip(serialize_change(change)))
        assert restored.is_error
