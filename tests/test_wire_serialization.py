"""Wire-format round-trip tests for everything crossing the event layer.

"The event layer ... handles data transmissions with entirely opaque
payloads" (Section 5.3) — so every message must survive JSON encoding.
"""

import pytest

from repro.core.cluster import (
    deserialize_after_image,
    deserialize_query,
    serialize_after_image,
    serialize_query,
)
from repro.core.notifications import (
    QueryChange,
    deserialize_change,
    serialize_change,
)
from repro.event.codec import JsonCodec
from repro.query.engine import Query
from repro.types import AfterImage, MatchType, WriteKind

CODEC = JsonCodec()


def json_roundtrip(payload):
    return CODEC.decode(CODEC.encode(payload))


class TestQuerySerialization:
    @pytest.mark.parametrize(
        "query",
        [
            Query({"a": 1}),
            Query({"a": {"$gte": 1, "$lt": 9}}, collection="articles"),
            Query({"$or": [{"a": 1}, {"b": {"$in": [1, 2]}}]}),
            Query({}, sort=[("year", -1), ("title", 1)], limit=3, offset=2),
            Query({"name": {"$regex": "^a", "$options": "i"}}),
            Query({"$text": {"$search": "real time"}}),
            Query({"loc": {"$geoWithin": {"$box": [[0, 0], [1, 1]]}}}),
        ],
    )
    def test_roundtrip_preserves_identity(self, query):
        wire = json_roundtrip(serialize_query(query))
        restored = deserialize_query(wire)
        assert restored == query
        assert restored.hash == query.hash
        assert restored.query_id == query.query_id

    def test_sort_directions_survive(self):
        query = Query({}, sort=[("a", -1)], limit=1)
        restored = deserialize_query(json_roundtrip(serialize_query(query)))
        assert restored.sort.fields == query.sort.fields


class TestAfterImageSerialization:
    def test_update_roundtrip(self):
        after = AfterImage(7, 3, WriteKind.UPDATE,
                           {"_id": 7, "v": [1, {"x": None}]},
                           collection="c", timestamp=12.5)
        restored = deserialize_after_image(
            json_roundtrip(serialize_after_image(after))
        )
        assert restored == after

    def test_delete_roundtrip(self):
        after = AfterImage("key", 9, WriteKind.DELETE, None)
        restored = deserialize_after_image(
            json_roundtrip(serialize_after_image(after))
        )
        assert restored.is_delete and restored.version == 9

    def test_wire_form_is_tagged_as_write(self):
        after = AfterImage(1, 1, WriteKind.INSERT, {"_id": 1})
        assert serialize_after_image(after)["kind"] == "write"


class TestChangeSerialization:
    @pytest.mark.parametrize(
        "change",
        [
            QueryChange("q1", MatchType.ADD, key=1, document={"_id": 1},
                        index=0),
            QueryChange("q1", MatchType.CHANGE_INDEX, key="k",
                        document={"_id": "k"}, index=2, old_index=5,
                        timestamp=1.25),
            QueryChange("q1", MatchType.REMOVE, key=1,
                        document={"_id": 1, "v": 2}),
            QueryChange("q1", MatchType.ERROR, key=None,
                        error="slack exhausted"),
        ],
    )
    def test_roundtrip(self, change):
        restored = deserialize_change(json_roundtrip(serialize_change(change)))
        assert restored == change

    def test_error_flag_survives(self):
        change = QueryChange("q1", MatchType.ERROR, error="x")
        restored = deserialize_change(json_roundtrip(serialize_change(change)))
        assert restored.is_error


class TestJsonCodecStrictness:
    """Round-trip fidelity regression: non-string keys must fail the
    encode instead of coming back silently stringified."""

    def test_non_string_key_raises(self):
        from repro.errors import CodecError

        with pytest.raises(CodecError):
            JsonCodec().encode({"versions": {1: 3}})

    def test_nested_non_string_key_raises(self):
        from repro.errors import CodecError

        with pytest.raises(CodecError):
            JsonCodec().encode([{"ok": [{"deep": {(1, 2): "x"}}]}])

    def test_permissive_mode_restores_seed_behavior(self):
        wire = JsonCodec(strict=False).encode({1: "a"})
        assert JsonCodec().decode(wire) == {"1": "a"}

    def test_string_keys_pass(self):
        payload = {"versions": {"1": 3}, "items": [1, 2, {"k": None}]}
        assert json_roundtrip(payload) == payload


class TestBinaryCodec:
    """The process model's compact wire format."""

    def test_envelope_roundtrip_preserves_key_types(self):
        from repro.event.wire import BinaryCodec

        codec = BinaryCodec()
        payload = {"versions": {1: 3, "a": 4}, "pair": (1, 2)}
        restored = codec.decode(codec.encode(payload))
        assert restored == payload
        assert restored["pair"] == (1, 2)

    def test_lazy_document_defers_decode(self):
        from repro.event.wire import BinaryCodec, LazyDocument, WireStats

        stats = WireStats()
        codec = BinaryCodec(lazy_documents=True, stats=stats)
        envelope = {"kind": "write", "key": 1, "version": 2,
                    "collection": "c", "document": {"_id": 1, "v": 9}}
        restored = codec.decode(codec.encode(envelope))
        document = restored["document"]
        assert isinstance(document, LazyDocument)
        assert not document.materialized
        assert stats.lazy_materialized == 0
        assert document["v"] == 9  # first access materializes
        assert document.materialized
        assert stats.lazy_materialized == 1
        assert dict(document) == envelope["document"]

    def test_lazy_document_reencodes_from_raw(self):
        from repro.event.wire import BinaryCodec, WireStats

        stats = WireStats()
        codec = BinaryCodec(lazy_documents=True, stats=stats)
        envelope = {"kind": "write", "key": 1, "version": 1,
                    "collection": "c", "document": {"_id": 1, "v": 1}}
        hop1 = codec.decode(codec.encode(envelope))
        hop2 = codec.decode(codec.encode(hop1))
        assert stats.lazy_materialized == 0
        assert dict(hop2["document"]) == envelope["document"]

    def test_corrupt_header_raises(self):
        from repro.errors import CodecError
        from repro.event.wire import BinaryCodec

        codec = BinaryCodec()
        with pytest.raises(CodecError):
            codec.decode(b"")
        with pytest.raises(CodecError):
            codec.decode(b"\x00\x01garbage")
        wire = bytearray(codec.encode({"a": 1}))
        wire[0] ^= 0xFF
        with pytest.raises(CodecError):
            codec.decode(bytes(wire))

    def test_batch_and_single_are_distinct(self):
        from repro.errors import CodecError
        from repro.event.wire import BinaryCodec

        codec = BinaryCodec()
        with pytest.raises(CodecError):
            codec.decode_batch(codec.encode({"a": 1}))
        with pytest.raises(CodecError):
            codec.decode(codec.encode_batch([{"a": 1}]))

    def test_batch_interns_repeated_keys(self):
        """The batch pickle stream's memo table interns repeated
        collection/field names: N similar envelopes cost far less than
        N single-message encodings."""
        from repro.event.wire import BinaryCodec

        codec = BinaryCodec()
        envelopes = [
            {"kind": "write", "collection": "shared-collection-name",
             "key": i, "version": 1,
             "document": {"field_one": i, "field_two": "x" * 5}}
            for i in range(32)
        ]
        batched = len(codec.encode_batch(envelopes))
        singles = sum(len(codec.encode(e)) for e in envelopes)
        assert batched < 0.8 * singles
