"""ASCII plotting helper tests."""

import math

from repro.sim.plotting import ascii_plot


class TestAsciiPlot:
    def test_renders_grid_with_markers(self):
        plot = ascii_plot(
            {"alpha": [(1, 1), (10, 10)], "beta": [(1, 10), (10, 1)]},
            width=20, height=8, log_x=False,
        )
        assert "a" in plot and "b" in plot
        assert "legend: a=alpha  b=beta" in plot
        assert plot.count("|") >= 16  # bordered rows

    def test_overlap_becomes_star(self):
        plot = ascii_plot(
            {"alpha": [(5, 5)], "beta": [(5, 5)]},
            width=10, height=5, log_x=False,
        )
        assert "*" in plot

    def test_skips_non_finite_values(self):
        plot = ascii_plot(
            {"s": [(1, 1), (2, math.inf), (3, float("nan")), (4, 2)]},
            log_x=False,
        )
        assert "s" in plot

    def test_all_infinite_series(self):
        assert ascii_plot({"s": [(1, math.inf)]}) == "(no finite data points)"

    def test_log_scale_axis_labels(self):
        plot = ascii_plot({"s": [(100, 1), (10_000, 2)]}, log_x=True)
        assert "(log scale)" in plot
        assert "10.0k" in plot

    def test_single_point_does_not_divide_by_zero(self):
        plot = ascii_plot({"s": [(5, 5)]}, log_x=False)
        assert "s" in plot
