"""Property-based round-trip suites for every wire codec.

Hypothesis generates BSON-ish payloads (nested dicts/arrays, unicode
keys, version fields) and asserts the round-trip contract of each
codec: the JSON codec must preserve every JSON-representable payload
exactly, and the binary codec must additionally preserve what JSON
cannot (non-string map keys, tuples-as-tuples is NOT promised — the
binary format pickles, so tuples survive too) in both eager and lazy
modes, single-message and batch.
"""

from hypothesis import given, settings, strategies as st

from repro.event.codec import JsonCodec, NoopCodec
from repro.event.wire import (
    BinaryCodec,
    LazyDocument,
    WireStats,
    build_codec,
    decode_batch,
    encode_batch,
    materialize,
)

# JSON-safe scalars: ints bounded to avoid json's float coercion edge
# cases being conflated with codec bugs; floats without NaN/inf (NaN
# breaks equality, inf is not strict JSON).
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=20),
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=25,
)

#: A representative after-image envelope: what actually crosses the
#: wire on the write path.
envelopes = st.fixed_dictionaries({
    "kind": st.just("write"),
    "key": st.one_of(st.integers(), st.text(max_size=10)),
    "version": st.integers(min_value=0, max_value=2 ** 31),
    "op": st.sampled_from(["insert", "update", "delete"]),
    "collection": st.text(min_size=1, max_size=12),
    "timestamp": st.floats(min_value=0, max_value=2e9,
                           allow_nan=False),
    "document": st.one_of(
        st.none(),
        st.dictionaries(st.text(min_size=1, max_size=10), json_values,
                        max_size=6),
    ),
})

# Beyond JSON: non-string dict keys and tuples, which only the binary
# (pickle-based) codec can carry faithfully.
binary_only_values = st.recursive(
    st.one_of(
        json_scalars,
        st.binary(max_size=16),
        st.tuples(st.integers(), st.text(max_size=5)),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.one_of(st.text(max_size=8), st.integers()),
            children, max_size=4,
        ),
    ),
    max_leaves=20,
)


class TestJsonCodecProperties:
    @given(payload=json_values)
    @settings(max_examples=60)
    def test_roundtrip_identity(self, payload):
        codec = JsonCodec()
        assert codec.decode(codec.encode(payload)) == payload

    @given(payload=envelopes)
    @settings(max_examples=40)
    def test_envelope_roundtrip(self, payload):
        codec = JsonCodec()
        assert codec.decode(codec.encode(payload)) == payload


class TestNoopCodecProperties:
    @given(payload=json_values)
    @settings(max_examples=20)
    def test_identity(self, payload):
        codec = NoopCodec()
        assert codec.decode(codec.encode(payload)) is payload


class TestBinaryCodecProperties:
    @given(payload=binary_only_values)
    @settings(max_examples=60)
    def test_roundtrip_identity(self, payload):
        codec = BinaryCodec()
        assert codec.decode(codec.encode(payload)) == payload

    @given(payload=envelopes)
    @settings(max_examples=40)
    def test_envelope_roundtrip_eager(self, payload):
        codec = BinaryCodec(lazy_documents=False)
        restored = codec.decode(codec.encode(payload))
        assert restored == payload
        assert type(restored.get("document")) in (dict, type(None))

    @given(payload=envelopes)
    @settings(max_examples=40)
    def test_envelope_roundtrip_lazy(self, payload):
        codec = BinaryCodec(lazy_documents=True)
        restored = codec.decode(codec.encode(payload))
        document = restored.pop("document")
        expected = dict(payload)
        expected_doc = expected.pop("document")
        assert restored == expected
        assert materialize(document) == expected_doc
        if isinstance(document, LazyDocument):
            assert dict(document) == expected_doc

    @given(payloads=st.lists(envelopes, max_size=8))
    @settings(max_examples=40)
    def test_batch_roundtrip(self, payloads):
        codec = BinaryCodec(lazy_documents=True)
        restored = codec.decode_batch(codec.encode_batch(payloads))
        assert len(restored) == len(payloads)
        for got, want in zip(restored, payloads):
            assert materialize(got) == want

    @given(payloads=st.lists(envelopes, min_size=1, max_size=6))
    @settings(max_examples=30)
    def test_reencode_without_materializing(self, payloads):
        """A lazy document re-encodes from its raw slice: routing a
        write onward never forces the after-image decode."""
        stats = WireStats()
        codec = BinaryCodec(lazy_documents=True, stats=stats)
        restored = codec.decode_batch(codec.encode_batch(payloads))
        rewired = codec.decode_batch(codec.encode_batch(restored))
        assert stats.lazy_materialized == 0
        for got, want in zip(rewired, payloads):
            assert materialize(got) == want


class TestCodecAgreement:
    """All codecs agree on JSON-safe payloads (modulo laziness)."""

    @given(payload=envelopes)
    @settings(max_examples=40)
    def test_binary_and_json_decode_equal(self, payload):
        json_codec = build_codec("json")
        binary = build_codec("binary")
        via_json = json_codec.decode(json_codec.encode(payload))
        via_binary = materialize(binary.decode(binary.encode(payload)))
        assert via_binary == via_json

    @given(payloads=st.lists(envelopes, max_size=5))
    @settings(max_examples=30)
    def test_batch_helpers_work_for_every_codec(self, payloads):
        for name in ("json", "binary", "noop"):
            codec = build_codec(name)
            restored = decode_batch(codec, encode_batch(codec, payloads))
            assert [materialize(p) for p in restored] == payloads
