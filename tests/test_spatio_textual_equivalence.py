"""Spatio-textual access-path equivalence: indexed vs naive streams.

The spatial grid and inverted token index are pure pruning layers: a
filtering node with them on must produce the byte-identical MatchEvent
stream a naive scan-everything node produces, for every operation.  Any
divergence is a lost (false-negative pruning) or spurious notification.

* node level — a hypothesis-driven op sequence (registrations,
  deactivations, writes, deletes, mid-stream subscriptions with
  retained-write replay) over a query pool mixing geo boxes, polygons,
  planar and spherical circles, bounded and unbounded ``$nearSphere``,
  positive/negated/phrase ``$text`` searches and array-of-points paths
  — against documents with in-range points, out-of-range coordinates,
  non-point junk and rotating text payloads;
* cluster level — identical client-visible streams under the
  deterministic inline execution model for every access-path gate
  combination (spatial on/off x text on/off x a coarse 4-cell grid),
  and converged results under the process model with the gates on.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from hypothesis import given, settings, strategies as st

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.filtering import FilteringNode
from repro.core.partitioning import NodeCoordinates
from repro.core.server import AppServer
from repro.event.broker import Broker
from repro.query.engine import MongoQueryEngine, Query
from repro.runtime.execution import ExecutionConfig, InlineExecutionModel
from repro.types import AfterImage, WriteKind

from tests.conftest import settle

KEYS = list(range(6))

QUERY_POOL = [
    # Spatial shapes, each with a distinct covering geometry.
    Query({"loc": {"$geoWithin": {"$box": [[-10, -10], [10, 10]]}}}),
    Query({"loc": {"$geoWithin": {"$polygon": [
        [0, 0], [40, 0], [40, 40], [0, 40]]}}}),
    Query({"loc": {"$geoWithin": {"$center": [[50, 50], 15]}}}),
    Query({"loc": {"$geoWithin": {"$centerSphere": [[9.99, 53.55], 0.05]}}}),
    Query({"loc": {"$nearSphere": {
        "$geometry": {"type": "Point", "coordinates": [13.4, 52.52]},
        "$maxDistance": 800_000,
    }}}),
    # Unbounded distance filter: a broad entry (no covering cells).
    Query({"loc": {"$nearSphere": {
        "$geometry": {"type": "Point", "coordinates": [0, 0]},
    }}}),
    # Antimeridian-hugging box: exercises the wrap seam.
    Query({"loc": {"$geoWithin": {"$box": [[170, -20], [180, 20]]}}}),
    # Array-of-points path.
    Query({"pts": {"$geoWithin": {"$box": [[-5, -5], [5, 5]]}}}),
    # Text: positive terms, negation, phrase-only (residual).
    Query({"$text": {"$search": "alpha beta"}}),
    Query({"$text": {"$search": "gamma -alpha"}}),
    Query({"$text": {"$search": '"alpha beta"'}}),
    # Conjunction of an indexable range and a geo predicate.
    Query({"$and": [
        {"v": {"$gte": 5}},
        {"loc": {"$geoWithin": {"$box": [[-90, -45], [90, 45]]}}},
    ]}),
    # Plain scalar predicates ride along.
    Query({"v": {"$gte": 10, "$lt": 20}}),
    Query({}),
]

write_op = st.tuples(
    st.just("write"),
    st.sampled_from(["insert", "update", "delete"]),
    st.sampled_from(KEYS),
    st.integers(min_value=0, max_value=60),
)
register_op = st.tuples(
    st.just("register"), st.integers(0, len(QUERY_POOL) - 1)
)
deactivate_op = st.tuples(
    st.just("deactivate"), st.integers(0, len(QUERY_POOL) - 1)
)

operations = st.lists(
    st.one_of(write_op, register_op, deactivate_op),
    min_size=0,
    max_size=50,
)

NOTES = [
    "alpha beta", "gamma delta", "alpha gamma", "delta",
    "beta", "", "alpha beta gamma",
]


def make_document(key: Any, value: int) -> Dict[str, Any]:
    """A moving object: position, point trail and text derived from the
    write value — including degenerate cases the index must survive."""
    lon = (value * 37.0) % 360.0 - 180.0
    lat = (value * 17.0) % 170.0 - 85.0
    if value % 11 == 0:
        loc: Any = "not-a-point"          # non-point junk at the path
    elif value % 13 == 0:
        loc = [lon, 120.0]                # out-of-range latitude
    else:
        loc = [lon, lat]
    return {
        "_id": key,
        "v": value,
        "loc": loc,
        "pts": [[lon / 2.0, lat / 2.0], [lon, lat]],
        "note": NOTES[value % len(NOTES)],
    }


class Driver:
    """Replays one op sequence against an indexed and a naive node."""

    def __init__(self) -> None:
        self.indexed = FilteringNode(
            NodeCoordinates(0, 0), use_index=True, memoize=True,
            spatial_index=True, text_index=True, spatial_grid_cells=16,
        )
        self.naive = FilteringNode(
            NodeCoordinates(0, 0), use_index=False, memoize=False
        )
        self.engine = MongoQueryEngine()
        self.versions: Dict[Any, int] = {key: 0 for key in KEYS}
        self.alive: Dict[Any, Dict[str, Any]] = {}

    def apply(self, op) -> None:
        if op[0] == "write":
            self._write(*op[1:])
        elif op[0] == "register":
            self._register(QUERY_POOL[op[1]])
        else:
            self._deactivate(QUERY_POOL[op[1]])

    def _write(self, kind: str, key: Any, value: int) -> None:
        if kind == "delete":
            if key not in self.alive:
                return
            del self.alive[key]
            self.versions[key] += 1
            image = AfterImage(key, self.versions[key], WriteKind.DELETE,
                               None)
        else:
            self.versions[key] += 1
            document = make_document(key, value)
            self.alive[key] = document
            write_kind = (WriteKind.INSERT if kind == "insert"
                          else WriteKind.UPDATE)
            image = AfterImage(key, self.versions[key], write_kind, document)
        got = self.indexed.process_write(image, now=0.0)
        expected = self.naive.process_write(image, now=0.0)
        assert got == expected, (image, got, expected)

    def _register(self, query: Query) -> None:
        bootstrap = [
            document for document in self.alive.values()
            if self.engine.matches(query, document)
        ]
        versions = {doc["_id"]: self.versions[doc["_id"]]
                    for doc in bootstrap}
        got = self.indexed.register_query(query, bootstrap, versions,
                                          now=0.0)
        expected = self.naive.register_query(query, bootstrap, versions,
                                             now=0.0)
        assert got == expected, (query.filter_doc, got, expected)

    def _deactivate(self, query: Query) -> None:
        got = self.indexed.deactivate_query(query.query_id)
        expected = self.naive.deactivate_query(query.query_id)
        assert got == expected

    def check_final_state(self) -> None:
        assert (self.indexed.active_queries()
                == self.naive.active_queries())
        for query_id in self.naive.active_queries():
            got = self.indexed.result_partition(query_id)
            expected = self.naive.result_partition(query_id)
            assert sorted(got, key=lambda d: str(d["_id"])) == sorted(
                expected, key=lambda d: str(d["_id"])
            ), query_id


class TestEventStreamEquivalence:
    @given(operations)
    @settings(max_examples=120, deadline=None)
    def test_indexed_equals_naive_after_every_operation(self, ops):
        driver = Driver()
        for op in ops:
            driver.apply(op)
        driver.check_final_state()

    @given(operations)
    @settings(max_examples=50, deadline=None)
    def test_indexed_never_does_more_match_work(self, ops):
        """Pruning must only ever SKIP evaluations, never add them."""
        driver = Driver()
        for op in ops:
            driver.apply(op)
        assert (driver.indexed.matched_operations
                <= driver.naive.matched_operations)

    @given(operations, st.integers(0, 50))
    @settings(max_examples=50, deadline=None)
    def test_mid_stream_subscription_replay_is_equivalent(self, ops, split):
        """Register EVERY pool query midway with an empty bootstrap: the
        retention buffer replays the pre-subscription writes, and the
        replayed event streams must agree too."""
        driver = Driver()
        writes = [op for op in ops if op[0] == "write"]
        split = min(split, len(writes))
        for op in writes[:split]:
            driver.apply(op)
        for query in QUERY_POOL:
            got = driver.indexed.register_query(query, [], {}, now=0.0)
            expected = driver.naive.register_query(query, [], {}, now=0.0)
            assert got == expected, query.filter_doc
        for op in writes[split:]:
            driver.apply(op)
        driver.check_final_state()


class TestCoarseGridEquivalence:
    """Grid resolution only changes pruning power, never the stream —
    down to a degenerate 1x1 grid where every point shares one cell."""

    @given(operations, st.sampled_from([1, 2, 4, 64]))
    @settings(max_examples=40, deadline=None)
    def test_any_resolution_matches_naive(self, ops, cells):
        indexed = FilteringNode(
            NodeCoordinates(0, 0), use_index=True,
            spatial_grid_cells=cells,
        )
        naive = FilteringNode(NodeCoordinates(0, 0), use_index=False)
        for query in QUERY_POOL:
            assert (indexed.register_query(query, [], {}, now=0.0)
                    == naive.register_query(query, [], {}, now=0.0))
        versions: Dict[Any, int] = {key: 0 for key in KEYS}
        alive: Dict[Any, Any] = {}
        for op in ops:
            if op[0] != "write":
                continue
            _, kind, key, value = op
            if kind == "delete":
                if key not in alive:
                    continue
                del alive[key]
                versions[key] += 1
                image = AfterImage(key, versions[key], WriteKind.DELETE,
                                   None)
            else:
                versions[key] += 1
                document = make_document(key, value)
                alive[key] = document
                write_kind = (WriteKind.INSERT if kind == "insert"
                              else WriteKind.UPDATE)
                image = AfterImage(key, versions[key], write_kind,
                                   document)
            assert (indexed.process_write(image, now=0.0)
                    == naive.process_write(image, now=0.0)), (cells, image)


# ----------------------------------------------------------------------
# Cluster level: every access-path gate combination, inline equivalence
# ----------------------------------------------------------------------

GATES = [
    {"spatial_index": False, "text_index": False},
    {"spatial_index": True, "text_index": False},
    {"spatial_index": False, "text_index": True},
    {"spatial_index": True, "text_index": True},
    {"spatial_index": True, "text_index": True, "spatial_grid_cells": 4},
]

cluster_operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.sampled_from(["insert", "update", "delete"]),
        st.integers(min_value=0, max_value=60),
    ),
    min_size=1,
    max_size=20,
)


def _apply_cluster_op(app, live, key, op, value):
    document = make_document(key, value)
    if op == "insert":
        if key in live:
            app.update("items", key, {"$set": {
                "v": value, "loc": document["loc"],
                "pts": document["pts"], "note": document["note"],
            }})
        else:
            app.insert("items", document)
            live.add(key)
    elif op == "update":
        if key in live:
            app.update("items", key, {"$set": {
                "v": value, "loc": document["loc"],
                "pts": document["pts"], "note": document["note"],
            }})
    elif op == "delete":
        if key in live:
            app.delete("items", key)
            live.discard(key)


def _fingerprint(subscription):
    return [
        (n.match_type, n.key, json.dumps(n.document, sort_keys=True),
         n.index, n.old_index, n.error)
        for n in subscription.notifications
    ]


def _run_inline_cluster(ops, gates):
    model = InlineExecutionModel(ExecutionConfig(mode="inline", seed=13))
    broker = Broker(execution=model)
    config = InvaliDBConfig(
        query_partitions=1, write_partitions=1,
        retention_seconds=3600.0,
        **gates,
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("st-equiv-app", broker, config=config)
    try:
        live = set()
        half = len(ops) // 2
        for key, op, value in ops[:half]:
            _apply_cluster_op(app, live, key, op, value)
        assert broker.drain()
        box = app.subscribe("items", {
            "loc": {"$geoWithin": {"$box": [[-60, -60], [60, 60]]}},
        })
        near = app.subscribe("items", {
            "loc": {"$nearSphere": {
                "$geometry": {"type": "Point", "coordinates": [0, 0]},
                "$maxDistance": 4_000_000,
            }},
        })
        text = app.subscribe("items", {"$text": {"$search": "alpha -delta"}})
        assert broker.drain()
        for key, op, value in ops[half:]:
            _apply_cluster_op(app, live, key, op, value)
        assert broker.drain()
        return (
            _fingerprint(box), _fingerprint(near), _fingerprint(text),
            json.dumps(box.result(), sort_keys=True),
            json.dumps(near.result(), sort_keys=True),
            json.dumps(text.result(), sort_keys=True),
        )
    finally:
        app.close()
        cluster.stop()
        broker.close()
        model.shutdown()


@settings(max_examples=10, deadline=None)
@given(ops=cluster_operations)
def test_inline_cluster_streams_identical_across_gates(ops):
    baseline = _run_inline_cluster(ops, GATES[0])
    for gates in GATES[1:]:
        assert _run_inline_cluster(ops, gates) == baseline, gates


def test_process_cluster_converges_with_access_paths_on():
    """The forked-worker deployment honors the gates end to end: the
    spec plumbing delivers them, and converged subscription results
    equal a fresh pull-based query."""
    broker = Broker()
    config = InvaliDBConfig(
        query_partitions=2, write_partitions=2,
        execution_model="process", process_workers=2,
        spatial_index=True, text_index=True, spatial_grid_cells=32,
        retention_seconds=3600.0,
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("st-app", broker, config=config)
    try:
        box = app.subscribe("items", {
            "loc": {"$geoWithin": {"$box": [[-60, -60], [60, 60]]}},
        })
        text = app.subscribe("items", {"$text": {"$search": "alpha"}})
        live = set()
        for i in range(24):
            _apply_cluster_op(app, live, i % 8,
                              "delete" if i % 7 == 0 else "insert",
                              i * 5 % 60)
        settle(cluster, broker, rounds=6)
        box_filter = {
            "loc": {"$geoWithin": {"$box": [[-60, -60], [60, 60]]}},
        }
        truth_box = {d["_id"] for d in app.find("items", box_filter)}
        truth_text = {d["_id"] for d in app.find(
            "items", {"$text": {"$search": "alpha"}})}
        assert {d["_id"] for d in box.result()} == truth_box
        assert {d["_id"] for d in text.result()} == truth_text
        paths = cluster.snapshot()["matching_totals"]["access_paths"]
        assert paths["spatial_entries"] > 0
        assert paths["text_entries"] > 0
    finally:
        app.close()
        cluster.stop()
        broker.close()
