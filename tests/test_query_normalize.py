"""Canonical query normalization and hashing tests.

The partitioning correctness of Section 5.1 rests on these properties:
the same logical query must always hash to the same value, regardless
of which app server formulated it or in which syntactic variant.
"""

from repro.query.engine import Query
from repro.query.normalize import (
    canonical_query_form,
    normalize_filter,
    query_hash,
)


class TestNormalizationInvariance:
    def test_key_order_is_irrelevant(self):
        assert normalize_filter({"a": 1, "b": 2}) == normalize_filter(
            {"b": 2, "a": 1}
        )

    def test_explicit_eq_equals_shorthand(self):
        assert normalize_filter({"a": 1}) == normalize_filter({"a": {"$eq": 1}})

    def test_or_branch_order_is_irrelevant(self):
        left = normalize_filter({"$or": [{"a": 1}, {"b": 2}]})
        right = normalize_filter({"$or": [{"b": 2}, {"a": 1}]})
        assert left == right

    def test_and_branch_order_is_irrelevant(self):
        left = normalize_filter({"$and": [{"a": 1}, {"b": {"$gt": 2}}]})
        right = normalize_filter({"$and": [{"b": {"$gt": 2}}, {"a": 1}]})
        assert left == right

    def test_in_value_order_is_irrelevant(self):
        assert normalize_filter({"a": {"$in": [1, 2]}}) == normalize_filter(
            {"a": {"$in": [2, 1]}}
        )

    def test_different_filters_differ(self):
        assert normalize_filter({"a": 1}) != normalize_filter({"a": 2})
        assert normalize_filter({"a": 1}) != normalize_filter({"b": 1})
        assert normalize_filter({"a": {"$gt": 1}}) != normalize_filter(
            {"a": {"$gte": 1}}
        )

    def test_ne_and_nin_differ(self):
        assert normalize_filter({"a": {"$ne": 1}}) != normalize_filter(
            {"a": {"$nin": [1]}}
        )

    def test_or_reorderings_hash_identically(self):
        """Regression: branch ordering used to fall back to repr-sort,
        which is not a total order over canonical forms.  Every
        permutation of the same $or must produce one canonical form and
        one hash — the shared predicate DAG interns branches by this
        canonical identity."""
        branches = [
            {"a": {"$gte": 10}},
            {"b": {"$in": [3, 1, 2]}},
            {"$and": [{"c": 1}, {"d": {"$lt": 5}}]},
            {"e": {"$exists": True}},
        ]
        orders = [
            branches,
            branches[::-1],
            [branches[2], branches[0], branches[3], branches[1]],
        ]
        forms = {normalize_filter({"$or": order}) for order in orders}
        hashes = {query_hash({"$or": order}) for order in orders}
        assert len(forms) == 1
        assert len(hashes) == 1

    def test_mixed_type_branch_ordering_is_total(self):
        """Values whose reprs collide or interleave across types (bool
        vs int, int vs float, None, strings) still sort into a single
        canonical order."""
        values = [True, 1, 1.0, 0, None, "1", 2.5, False]
        left = normalize_filter({"$or": [{"x": v} for v in values]})
        right = normalize_filter({"$or": [{"x": v} for v in reversed(values)]})
        assert left == right


class TestQueryHash:
    def test_stable_across_calls(self):
        assert query_hash({"a": 1}) == query_hash({"a": 1})

    def test_subscription_identity_requirement(self):
        """Distinct subscriptions to the same query share the hash."""
        server_a = query_hash({"year": {"$gte": 2017}}, collection="articles")
        server_b = query_hash({"year": {"$gte": 2017}}, collection="articles")
        assert server_a == server_b

    def test_collection_is_part_of_identity(self):
        assert query_hash({"a": 1}, collection="x") != query_hash(
            {"a": 1}, collection="y"
        )

    def test_sort_limit_offset_are_part_of_identity(self):
        base = query_hash({"a": 1}, sort=[("b", 1)])
        assert base != query_hash({"a": 1}, sort=[("b", -1)])
        assert base != query_hash({"a": 1}, sort=[("b", 1)], limit=5)
        assert base != query_hash({"a": 1}, sort=[("b", 1)], limit=5, offset=2)

    def test_hash_is_64_bit(self):
        assert 0 <= query_hash({"a": 1}) < 2**64

    def test_known_stability_anchor(self):
        """Guards against accidental canonical-form changes: the hash of
        this fixed query must never change between releases, because
        persisted subscriptions would re-partition."""
        value = query_hash({"a": 1}, collection="default")
        assert value == query_hash({"a": {"$eq": 1}}, collection="default")


class TestQueryObjectIdentity:
    def test_query_equality_follows_canonical_form(self):
        assert Query({"a": 1, "b": 2}) == Query({"b": 2, "a": 1})
        assert Query({"a": 1}) != Query({"a": 1}, collection="other")

    def test_query_id_derives_from_hash(self):
        query = Query({"a": 1})
        assert query.query_id == f"q-{query.hash:016x}"

    def test_canonical_form_includes_all_clauses(self):
        form = canonical_query_form(
            {"a": 1}, collection="c", sort=[("b", 1)], limit=3, offset=1
        )
        assert form[0] == "c"
        assert form[3] == 3 and form[4] == 1
