"""Update-operator tests ($set, $inc, $push, ...)."""

import pytest

from repro.errors import InvalidDocumentError
from repro.store.updates import apply_update, is_update_document


class TestClassification:
    def test_operator_document(self):
        assert is_update_document({"$set": {"a": 1}})
        assert not is_update_document({"a": 1})
        assert not is_update_document({})


class TestSetUnset:
    def test_set_nested_path(self):
        result = apply_update({"_id": 1}, {"$set": {"a.b": 2}})
        assert result == {"_id": 1, "a": {"b": 2}}

    def test_set_does_not_mutate_original(self):
        original = {"_id": 1, "a": 1}
        apply_update(original, {"$set": {"a": 2}})
        assert original["a"] == 1

    def test_unset(self):
        result = apply_update({"_id": 1, "a": 1, "b": 2}, {"$unset": {"a": ""}})
        assert result == {"_id": 1, "b": 2}

    def test_unset_missing_is_noop(self):
        result = apply_update({"_id": 1}, {"$unset": {"zzz": ""}})
        assert result == {"_id": 1}


class TestArithmetic:
    def test_inc(self):
        assert apply_update({"_id": 1, "n": 3}, {"$inc": {"n": 2}})["n"] == 5

    def test_inc_missing_starts_at_zero(self):
        assert apply_update({"_id": 1}, {"$inc": {"n": 2}})["n"] == 2

    def test_inc_non_numeric_target(self):
        with pytest.raises(InvalidDocumentError):
            apply_update({"_id": 1, "n": "x"}, {"$inc": {"n": 1}})

    def test_mul(self):
        assert apply_update({"_id": 1, "n": 3}, {"$mul": {"n": 4}})["n"] == 12

    def test_min_max(self):
        assert apply_update({"_id": 1, "n": 5}, {"$min": {"n": 3}})["n"] == 3
        assert apply_update({"_id": 1, "n": 5}, {"$min": {"n": 9}})["n"] == 5
        assert apply_update({"_id": 1, "n": 5}, {"$max": {"n": 9}})["n"] == 9
        assert apply_update({"_id": 1}, {"$max": {"n": 9}})["n"] == 9


class TestArrayOperators:
    def test_push(self):
        result = apply_update({"_id": 1, "t": [1]}, {"$push": {"t": 2}})
        assert result["t"] == [1, 2]

    def test_push_each(self):
        result = apply_update({"_id": 1}, {"$push": {"t": {"$each": [1, 2]}}})
        assert result["t"] == [1, 2]

    def test_push_to_non_array(self):
        with pytest.raises(InvalidDocumentError):
            apply_update({"_id": 1, "t": 3}, {"$push": {"t": 1}})

    def test_add_to_set_deduplicates(self):
        result = apply_update(
            {"_id": 1, "t": [1, 2]}, {"$addToSet": {"t": {"$each": [2, 3]}}}
        )
        assert result["t"] == [1, 2, 3]

    def test_pop_last_and_first(self):
        assert apply_update({"_id": 1, "t": [1, 2, 3]},
                            {"$pop": {"t": 1}})["t"] == [1, 2]
        assert apply_update({"_id": 1, "t": [1, 2, 3]},
                            {"$pop": {"t": -1}})["t"] == [2, 3]

    def test_pull_scalar(self):
        result = apply_update({"_id": 1, "t": [1, 2, 1]}, {"$pull": {"t": 1}})
        assert result["t"] == [2]

    def test_pull_with_condition(self):
        result = apply_update(
            {"_id": 1, "t": [1, 5, 9]}, {"$pull": {"t": {"$gt": 4}}}
        )
        assert result["t"] == [1]

    def test_pull_document_condition(self):
        result = apply_update(
            {"_id": 1, "t": [{"k": 1}, {"k": 2}]},
            {"$pull": {"t": {"k": 2}}},
        )
        assert result["t"] == [{"k": 1}]


class TestOther:
    def test_rename(self):
        result = apply_update({"_id": 1, "old": 7}, {"$rename": {"old": "new"}})
        assert result == {"_id": 1, "new": 7}

    def test_current_date(self):
        result = apply_update({"_id": 1}, {"$currentDate": {"ts": True}},
                              now=123.0)
        assert result["ts"] == 123.0

    def test_unknown_operator(self):
        with pytest.raises(InvalidDocumentError):
            apply_update({"_id": 1}, {"$bit": {"a": 1}})

    def test_primary_key_is_immutable(self):
        with pytest.raises(InvalidDocumentError):
            apply_update({"_id": 1}, {"$set": {"_id": 2}})
        with pytest.raises(InvalidDocumentError):
            apply_update({"_id": 1}, {"$inc": {"_id": 1}})

    def test_multiple_operators_apply_in_order(self):
        result = apply_update(
            {"_id": 1, "n": 1},
            {"$inc": {"n": 1}, "$set": {"m": "x"}, "$push": {"t": 0}},
        )
        assert result == {"_id": 1, "n": 2, "m": "x", "t": [0]}
