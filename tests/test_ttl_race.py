"""Regression tests: the TTL-extension / expiry-sweep race.

``_extend_ttl`` used to look the registration up under the registry
lock but call ``extend()`` after releasing it.  ``sweep_expired``
could expire-and-deactivate the query in that gap — cancel injected to
the grid, wire record dropped — while the late ``extend()`` reported
success on an orphaned registration: the app server believed the query
was alive, the grid had already forgotten it.  Both operations now
hold the registry lock across their read-check-mutate sequence, making
every interleaving equivalent to "extend first" or "sweep first".
"""

import threading

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.event.broker import Broker
from repro.runtime.execution import ExecutionConfig, InlineExecutionModel


class ManualClock:
    def __init__(self, start: float = 1000.0):
        self.now = start
        self._lock = threading.Lock()

    def advance(self, seconds: float) -> None:
        with self._lock:
            self.now += seconds

    def __call__(self) -> float:
        with self._lock:
            return self.now


def make_cluster(clock, ttl):
    model = InlineExecutionModel(ExecutionConfig(mode="inline", seed=1))
    broker = Broker(execution=model)
    config = InvaliDBConfig(
        clock=clock, subscription_ttl=ttl,
        # Sweeps only happen when the test asks for them.
        heartbeat_interval=3600.0, heartbeat_timeout=7200.0,
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("ttl-app", broker, config=config)
    return cluster, broker, app, model


def registry_is_consistent(cluster) -> bool:
    """The wire store mirrors the registration table exactly."""
    with cluster._registration_lock:
        return set(cluster._registrations) == set(cluster._wires)


class TestTtlSweepAtomicity:
    def test_extend_after_sweep_does_not_resurrect(self):
        clock = ManualClock()
        cluster, broker, app, model = make_cluster(clock, ttl=10.0)
        try:
            subscription = app.subscribe("items", {"v": 1})
            assert broker.drain()
            (query_id,) = cluster.active_query_ids()
            clock.advance(11.0)
            assert cluster.sweep_expired() == [query_id]
            assert broker.drain()
            # A TTL wire arriving after the sweep must be a no-op: the
            # registration is gone and stays gone.
            cluster._extend_ttl(
                {"kind": "ttl", "query_id": query_id,
                 "app_server": app.client.app_server_id}
            )
            assert cluster.active_query_ids() == []
            assert registry_is_consistent(cluster)
            assert subscription is not None
        finally:
            app.close()
            cluster.stop()
            broker.close()
            model.shutdown()

    def test_extend_before_sweep_keeps_query_alive(self):
        clock = ManualClock()
        cluster, broker, app, model = make_cluster(clock, ttl=10.0)
        try:
            app.subscribe("items", {"v": 1})
            assert broker.drain()
            (query_id,) = cluster.active_query_ids()
            clock.advance(9.0)
            cluster._extend_ttl(
                {"kind": "ttl", "query_id": query_id,
                 "app_server": app.client.app_server_id}
            )
            clock.advance(9.0)  # past the original deadline only
            assert cluster.sweep_expired() == []
            assert cluster.active_query_ids() == [query_id]
        finally:
            app.close()
            cluster.stop()
            broker.close()
            model.shutdown()

    def test_concurrent_extend_and_sweep_stay_consistent(self):
        """Hammer extends against sweeps right at the expiry boundary.

        Whatever interleaving wins each round, the registry and the
        wire store must agree, and a deactivated query must never
        reappear without a fresh subscribe.
        """
        clock = ManualClock()
        cluster, broker, app, model = make_cluster(clock, ttl=1.0)
        try:
            app.subscribe("items", {"v": 1})
            assert broker.drain()
            (query_id,) = cluster.active_query_ids()
            wire = {"kind": "ttl", "query_id": query_id,
                    "app_server": app.client.app_server_id}
            stop = threading.Event()
            inconsistencies = []

            def extender():
                while not stop.is_set():
                    cluster._extend_ttl(wire)
                    if not registry_is_consistent(cluster):
                        inconsistencies.append("extend")

            threads = [threading.Thread(target=extender) for _ in range(4)]
            for thread in threads:
                thread.start()
            deactivated = []
            for _ in range(200):
                # Sit exactly on the boundary: an extend that lands
                # before the sweep saves the query, one that lands
                # after must be a no-op.
                clock.advance(1.001)
                swept = cluster.sweep_expired()
                if not registry_is_consistent(cluster):
                    inconsistencies.append("sweep")
                if swept:
                    deactivated.extend(swept)
                    break
            stop.set()
            for thread in threads:
                thread.join(timeout=5.0)
            assert not inconsistencies
            if deactivated:
                # Once swept, the late extends must not have
                # resurrected the registration.
                assert cluster.active_query_ids() == []
                assert registry_is_consistent(cluster)
        finally:
            app.close()
            cluster.stop()
            broker.close()
            model.shutdown()
