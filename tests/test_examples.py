"""Every example must run green — they are executable documentation.

Each example self-verifies (asserts convergence) and exits non-zero on
failure, so a plain subprocess run is a meaningful end-to-end test.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXAMPLES = [
    "quickstart.py",
    "leaderboard.py",
    "query_caching.py",
    "mechanism_comparison.py",
    "live_aggregates.py",
    "live_join.py",
    "capacity_planning.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, (
        f"{script} failed:\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert "OK" in result.stdout or "converged" in result.stdout


def test_module_demo_runs_clean():
    result = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stdout[-2000:]
    assert "converged!" in result.stdout
