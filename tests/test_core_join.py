"""Join-stage tests (the second §8.1 extension)."""

import random

import pytest

from repro.core.filtering import FilteringNode, MatchEvent
from repro.core.join import JoinNode, JoinSpec
from repro.core.partitioning import NodeCoordinates
from repro.errors import QueryParseError
from repro.query.engine import Query
from repro.types import AfterImage, MatchType, WriteKind

ORDERS = Query({"status": "open"}, collection="orders")
CUSTOMERS = Query({"active": True}, collection="customers")
SPEC = JoinSpec(ORDERS, CUSTOMERS, left_on="customer_id", right_on="_id")


def order(key, customer, status="open"):
    return {"_id": key, "customer_id": customer, "status": status}


def customer(key, active=True, name="x"):
    return {"_id": key, "active": active, "name": name}


def event(query, match_type, doc=None, key=None, version=1):
    return MatchEvent(query.query_id, match_type,
                      key if key is not None else doc["_id"],
                      doc, version, 0.0, False)


@pytest.fixture
def node():
    join = JoinNode()
    join.register_join(SPEC, [], [])
    return join


class TestSpec:
    def test_requires_field_paths(self):
        with pytest.raises(QueryParseError):
            JoinSpec(ORDERS, CUSTOMERS, left_on="", right_on="_id")

    def test_rejects_same_query_twice(self):
        with pytest.raises(QueryParseError):
            JoinSpec(ORDERS, ORDERS, left_on="a", right_on="b")

    def test_join_id_is_deterministic(self):
        other = JoinSpec(ORDERS, CUSTOMERS, left_on="customer_id",
                         right_on="_id")
        assert other.join_id == SPEC.join_id


class TestIncrementalJoin:
    def test_pair_appears_when_both_sides_present(self, node):
        assert node.handle_event(
            event(ORDERS, MatchType.ADD, order("o1", "c1"))
        ) == []
        changes = node.handle_event(
            event(CUSTOMERS, MatchType.ADD, customer("c1"))
        )
        assert len(changes) == 1
        assert changes[0].match_type is MatchType.ADD
        assert changes[0].document["left"]["_id"] == "o1"
        assert changes[0].document["right"]["_id"] == "c1"

    def test_one_customer_many_orders(self, node):
        node.handle_event(event(CUSTOMERS, MatchType.ADD, customer("c1")))
        node.handle_event(event(ORDERS, MatchType.ADD, order("o1", "c1")))
        node.handle_event(event(ORDERS, MatchType.ADD, order("o2", "c1")))
        assert len(node.pairs(SPEC.join_id)) == 2

    def test_removing_customer_removes_all_pairs(self, node):
        node.handle_event(event(CUSTOMERS, MatchType.ADD, customer("c1")))
        node.handle_event(event(ORDERS, MatchType.ADD, order("o1", "c1")))
        node.handle_event(event(ORDERS, MatchType.ADD, order("o2", "c1")))
        changes = node.handle_event(
            event(CUSTOMERS, MatchType.REMOVE, key="c1", version=2)
        )
        assert len(changes) == 2
        assert all(c.match_type is MatchType.REMOVE for c in changes)
        assert node.pairs(SPEC.join_id) == []

    def test_update_changing_join_value_repartners(self, node):
        node.handle_event(event(CUSTOMERS, MatchType.ADD, customer("c1")))
        node.handle_event(event(CUSTOMERS, MatchType.ADD, customer("c2")))
        node.handle_event(event(ORDERS, MatchType.ADD, order("o1", "c1")))
        changes = node.handle_event(
            event(ORDERS, MatchType.CHANGE, order("o1", "c2"), version=2)
        )
        kinds = {(c.match_type, c.key) for c in changes}
        assert (MatchType.REMOVE, "o1|c1") in kinds
        assert (MatchType.ADD, "o1|c2") in kinds

    def test_update_keeping_join_value_emits_pair_change(self, node):
        node.handle_event(event(CUSTOMERS, MatchType.ADD, customer("c1")))
        node.handle_event(event(ORDERS, MatchType.ADD, order("o1", "c1")))
        changes = node.handle_event(event(
            CUSTOMERS, MatchType.CHANGE, customer("c1", name="renamed"),
            version=2,
        ))
        assert len(changes) == 1
        assert changes[0].match_type is MatchType.CHANGE
        assert changes[0].document["right"]["name"] == "renamed"

    def test_missing_join_field_joins_nothing(self, node):
        node.handle_event(event(CUSTOMERS, MatchType.ADD, customer("c1")))
        node.handle_event(event(ORDERS, MatchType.ADD,
                                {"_id": "o1", "status": "open"}))
        assert node.pairs(SPEC.join_id) == []

    def test_bootstrap_pairs(self):
        join = JoinNode()
        join.register_join(
            SPEC,
            [order("o1", "c1"), order("o2", "c2")],
            [customer("c1")],
        )
        pairs = join.pairs(SPEC.join_id)
        assert [p["_id"] for p in pairs] == ["o1|c1"]

    def test_re_registration_emits_pair_delta(self):
        join = JoinNode()
        join.register_join(SPEC, [order("o1", "c1")], [customer("c1")])
        changes = join.register_join(
            SPEC, [order("o2", "c1")], [customer("c1")]
        )
        kinds = {(c.match_type, c.key) for c in changes}
        assert (MatchType.REMOVE, "o1|c1") in kinds
        assert (MatchType.ADD, "o2|c1") in kinds

    def test_deactivation(self, node):
        assert node.deactivate_join(SPEC.join_id)
        assert not node.deactivate_join(SPEC.join_id)
        assert node.handle_event(
            event(ORDERS, MatchType.ADD, order("o1", "c1"))
        ) == []

    def test_numeric_join_values_unify_int_float(self, node):
        spec = JoinSpec(Query({"kind": "a"}), Query({"kind": "b"}),
                        left_on="ref", right_on="ref")
        join = JoinNode()
        join.register_join(spec, [], [])
        join.handle_event(MatchEvent(spec.left.query_id, MatchType.ADD, "l1",
                                     {"_id": "l1", "ref": 3}, 1, 0.0, False))
        changes = join.handle_event(
            MatchEvent(spec.right.query_id, MatchType.ADD, "r1",
                       {"_id": "r1", "ref": 3.0}, 1, 0.0, False)
        )
        assert len(changes) == 1


class TestJoinPipeline:
    def test_filtering_into_join_end_to_end(self):
        """Two filtering nodes (one per collection) feeding one join."""
        orders_node = FilteringNode(NodeCoordinates(0, 0))
        customers_node = FilteringNode(NodeCoordinates(0, 0))
        join = JoinNode()
        orders_node.register_query(ORDERS, [], {}, now=0.0)
        customers_node.register_query(CUSTOMERS, [], {}, now=0.0)
        join.register_join(SPEC, [], [])

        def write(node, key, doc, version, collection,
                  kind=WriteKind.UPDATE):
            after = AfterImage(key, version, kind, doc,
                               collection=collection)
            changes = []
            for match_event in node.process_write(after, now=0.0):
                changes.extend(join.handle_event(match_event))
            return changes

        write(customers_node, "c1", customer("c1"), 1, "customers")
        write(orders_node, "o1", order("o1", "c1"), 1, "orders")
        # Closing the order removes it from the left query -> pair gone.
        changes = write(orders_node, "o1", order("o1", "c1", "closed"), 2,
                        "orders")
        assert [c.match_type for c in changes] == [MatchType.REMOVE]
        assert join.pairs(SPEC.join_id) == []

    def test_join_equals_recomputation_under_churn(self):
        rng = random.Random(21)
        orders_node = FilteringNode(NodeCoordinates(0, 0))
        customers_node = FilteringNode(NodeCoordinates(0, 0))
        join = JoinNode()
        orders_node.register_query(ORDERS, [], {}, now=0.0)
        customers_node.register_query(CUSTOMERS, [], {}, now=0.0)
        join.register_join(SPEC, [], [])
        orders_state, customers_state = {}, {}
        versions = {}

        def push(node, key, doc, collection):
            versions[key] = versions.get(key, 0) + 1
            kind = WriteKind.DELETE if doc is None else WriteKind.UPDATE
            after = AfterImage(key, versions[key], kind, doc,
                               collection=collection)
            for match_event in node.process_write(after, now=0.0):
                join.handle_event(match_event)

        for step in range(400):
            if rng.random() < 0.5:
                key = f"o{rng.randrange(15)}"
                if rng.random() < 0.2 and key in orders_state:
                    del orders_state[key]
                    push(orders_node, key, None, "orders")
                else:
                    doc = order(key, f"c{rng.randrange(6)}",
                                rng.choice(["open", "closed"]))
                    orders_state[key] = doc
                    push(orders_node, key, doc, "orders")
            else:
                key = f"c{rng.randrange(6)}"
                if rng.random() < 0.2 and key in customers_state:
                    del customers_state[key]
                    push(customers_node, key, None, "customers")
                else:
                    doc = customer(key, active=rng.random() < 0.7)
                    customers_state[key] = doc
                    push(customers_node, key, doc, "customers")

        expected = set()
        for o in orders_state.values():
            if o["status"] != "open":
                continue
            for c in customers_state.values():
                if c["active"] and o["customer_id"] == c["_id"]:
                    expected.add(f"{o['_id']}|{c['_id']}")
        maintained = {p["_id"] for p in join.pairs(SPEC.join_id)}
        assert maintained == expected
