"""Property-based tests: replay of retained versioned writes is inert.

The recovery protocol leans on one invariant everywhere — supervisor
replay after a node restart, event-layer redelivery after a reconnect,
duplicated publishes from client retries: *re-delivering any suffix of
the retained, versioned write stream to a caught-up cluster must not
produce new notifications*, because every after-image is at or below
the version the filtering stage already processed.  Hypothesis drives
arbitrary workloads (inserts, updates, deletes over a small key space)
and arbitrary replay suffixes through the deterministic inline model
and checks the client never sees a duplicate or out-of-order effect.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.event.broker import Broker
from repro.event.channels import write_channel
from repro.runtime.execution import ExecutionConfig, InlineExecutionModel


class SteppingClock:
    def __init__(self, start: float = 1000.0, step: float = 0.001):
        self.now = start
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


#: One workload step: (key, operation). Updates and deletes of absent
#: keys degrade to no-ops at the app server, which is fine — the
#: generated stream stays arbitrary.
operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.sampled_from(["insert", "update", "delete"]),
    ),
    min_size=1,
    max_size=25,
)


def apply_operation(app, live, step, key, op):
    if op == "insert":
        if key in live:
            app.update("items", key, {"$set": {"v": step}})
        else:
            app.insert("items", {"_id": key, "v": step})
            live.add(key)
    elif op == "update":
        if key in live:
            app.update("items", key, {"$set": {"v": step + 1000}})
    elif op == "delete":
        if key in live:
            app.delete("items", key)
            live.discard(key)


@settings(max_examples=30, deadline=None)
@given(ops=operations, suffix=st.integers(min_value=0, max_value=24),
       data=st.data())
def test_replaying_any_suffix_of_retained_writes_is_inert(
    ops, suffix, data
):
    model = InlineExecutionModel(ExecutionConfig(mode="inline", seed=7))
    broker = Broker(execution=model)
    config = InvaliDBConfig(
        query_partitions=2, write_partitions=2,
        retention_seconds=3600.0, clock=SteppingClock(),
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("prop-app", broker, config=config)
    try:
        flat = app.subscribe("items", {"v": {"$gte": 0}})
        top = app.subscribe("items", {}, sort=[("v", -1)], limit=3)
        assert broker.drain()
        live = set()
        for step, (key, op) in enumerate(ops):
            apply_operation(app, live, step, key, op)
        assert broker.drain()

        before_flat = json.dumps(flat.result(), sort_keys=True)
        before_top = json.dumps(top.result(), sort_keys=True)
        notifications_before = (
            len(flat.notifications), len(top.notifications)
        )

        # Simulated reconnect: the event layer redelivers an arbitrary
        # suffix of each write partition's retained stream.
        for wp in range(config.write_partitions):
            retained = cluster._retained_writes(wp)
            for payload in retained[min(suffix, len(retained)):]:
                broker.publish(write_channel(), payload)
        assert broker.drain()

        # No duplicate, no reordering, no effect at all: the replayed
        # after-images are all stale by version.
        assert json.dumps(flat.result(), sort_keys=True) == before_flat
        assert json.dumps(top.result(), sort_keys=True) == before_top
        assert (len(flat.notifications),
                len(top.notifications)) == notifications_before
        # Materialized orders contain each key at most once.
        for handle in (flat, top):
            assert len(handle._order) == len(set(handle._order))
    finally:
        app.close()
        cluster.stop()
        broker.close()
        model.shutdown()


@settings(max_examples=30, deadline=None)
@given(ops=operations)
def test_client_version_gate_never_regresses(ops):
    """Per-key versions observed by a subscription never decrease."""
    model = InlineExecutionModel(ExecutionConfig(mode="inline", seed=3))
    broker = Broker(execution=model)
    config = InvaliDBConfig(
        query_partitions=2, write_partitions=2,
        retention_seconds=3600.0, clock=SteppingClock(),
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("prop-app", broker, config=config)
    try:
        flat = app.subscribe("items", {"v": {"$gte": 0}})
        assert broker.drain()
        live = set()
        for step, (key, op) in enumerate(ops):
            apply_operation(app, live, step, key, op)
        assert broker.drain()
        seen = {}
        for notification in flat.notifications:
            if not notification.version:
                continue
            assert notification.version >= seen.get(notification.key, 0)
            seen[notification.key] = notification.version
    finally:
        app.close()
        cluster.stop()
        broker.close()
        model.shutdown()
