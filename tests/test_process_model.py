"""Process-per-partition execution: behavior, equivalence, recovery.

The process model moves the grid's compute into forked worker
processes behind the binary wire codec; everything observable — the
notification stream, supervised recovery, the cluster snapshot — must
stay equivalent to the in-process substrates.  The equivalence suite
runs one seeded workload on the inline, threaded and process models
and compares normalized transcripts; the chaos test hard-kills a
worker (`SIGKILL`, no cleanup) and asserts supervised recovery
converges to the database.
"""

import json
import os
import signal
import socket
import time

import pytest

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.errors import ClusterConfigError
from repro.event.broker import Broker
from repro.runtime.execution import ExecutionConfig, InlineExecutionModel
from repro.types import MatchType

pytestmark = pytest.mark.skipif(
    not (hasattr(os, "fork") and hasattr(socket, "AF_UNIX")),
    reason="process execution model requires POSIX fork + socketpair",
)


def settle(cluster, broker, rounds=4, timeout=10.0):
    for _ in range(rounds):
        broker.drain(timeout)
        cluster.drain(timeout)


def wait_for(predicate, timeout=8.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def apply_workload(app):
    """The chaos suite's deterministic write mix."""
    for i in range(40):
        app.insert("items", {"_id": i, "v": i})
    for i in range(0, 40, 2):
        app.update("items", i, {"$set": {"v": i + 100}})
    for i in range(0, 40, 5):
        app.delete("items", i)


def transcript(subscription):
    """Timestamp-free transcript of everything a subscription saw."""
    return [
        (
            n.match_type.value, n.key, n.version, n.index, n.old_index,
            json.dumps(n.document, sort_keys=True, default=str),
        )
        for n in subscription.notifications
    ]


def run_scenario(**config_kwargs):
    """One seeded workload under the given execution configuration.

    Returns everything observable in serialized form so substrates can
    be compared: final results, the database's view, and the flat
    (unsorted) query's transcript.  Two normalizations make streams
    comparable: in-batch coalescing is disabled so every substrate
    emits one notification per matching write, and a single write-
    ingestion bolt preserves end-to-end write order (with the default
    four, concurrent substrates can reorder a key's update past its
    delete — the versioned-write protocol drops the stale one, which
    keeps results correct but elides a notification).  The transcripts
    then differ only in cross-task interleaving, which the multiset
    comparison normalizes away.
    """
    execution = config_kwargs.pop("broker_execution", None)
    broker = Broker(execution=execution) if execution else Broker()
    config = InvaliDBConfig(
        query_partitions=2, write_partitions=2,
        notification_coalescing=False,
        write_ingestion_nodes=1,
        **config_kwargs,
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("equivalence-app", broker, config=config)
    try:
        flat = app.subscribe("items", {"v": {"$gte": 0}})
        top = app.subscribe("items", {}, sort=[("v", -1)], limit=5)
        settle(cluster, broker)
        apply_workload(app)
        settle(cluster, broker, rounds=6)
        return {
            "flat_result": json.dumps(
                sorted(flat.result(), key=lambda d: d["_id"]),
                sort_keys=True,
            ),
            "top_result": json.dumps(top.result(), sort_keys=True),
            "db_flat": json.dumps(
                sorted(app.find("items", {"v": {"$gte": 0}}),
                       key=lambda d: d["_id"]),
                sort_keys=True,
            ),
            "db_top": json.dumps(
                app.find("items", {}, sort=[("v", -1)], limit=5),
                sort_keys=True,
            ),
            "flat_transcript": transcript(flat),
        }
    finally:
        app.close()
        cluster.stop()
        broker.close()


class TestProcessModelBasics:
    def test_unsorted_lifecycle(self):
        broker = Broker()
        config = InvaliDBConfig(
            query_partitions=2, write_partitions=2,
            execution_model="process", process_workers=2,
        )
        cluster = InvaliDBCluster(broker, config).start()
        app = AppServer("app-1", broker)
        try:
            sub = app.subscribe("items", {"v": {"$gte": 10}})
            assert sub.initial.documents == []

            app.insert("items", {"_id": 1, "v": 15})
            app.insert("items", {"_id": 2, "v": 5})
            settle(cluster, broker)
            assert wait_for(lambda: len(sub.notifications) == 1)
            assert sub.notifications[0].match_type is MatchType.ADD

            app.update("items", 1, {"$set": {"v": 20}})
            settle(cluster, broker)
            assert wait_for(
                lambda: sub.notifications[-1].match_type is MatchType.CHANGE
            )

            app.update("items", 1, {"$set": {"v": 1}})
            settle(cluster, broker)
            assert wait_for(
                lambda: sub.notifications[-1].match_type is MatchType.REMOVE
            )
            assert sub.result() == []
        finally:
            app.close()
            cluster.stop()
            broker.close()

    def test_sorted_query_in_worker(self):
        broker = Broker()
        config = InvaliDBConfig(
            query_partitions=2, write_partitions=2,
            execution_model="process", process_workers=2,
        )
        cluster = InvaliDBCluster(broker, config).start()
        app = AppServer("app-1", broker)
        try:
            sub = app.subscribe("items", {"v": {"$gte": 0}},
                                sort=[("v", 1)], limit=3)
            for i in range(10):
                app.insert("items", {"_id": i, "v": (i * 7) % 13})
            settle(cluster, broker, rounds=6)
            expected = app.find("items", {"v": {"$gte": 0}},
                                sort=[("v", 1)], limit=3)
            assert wait_for(lambda: sub.result() == expected)
        finally:
            app.close()
            cluster.stop()
            broker.close()

    def test_json_wire_codec_also_works(self):
        broker = Broker()
        config = InvaliDBConfig(
            query_partitions=1, write_partitions=2,
            execution_model="process", process_workers=2,
            wire_codec="json",
        )
        cluster = InvaliDBCluster(broker, config).start()
        app = AppServer("app-1", broker)
        try:
            sub = app.subscribe("items", {"v": {"$gte": 1}})
            app.insert("items", {"_id": "a", "v": 2})
            settle(cluster, broker)
            assert wait_for(lambda: len(sub.notifications) == 1)
        finally:
            app.close()
            cluster.stop()
            broker.close()

    def test_snapshot_merges_worker_state(self):
        broker = Broker()
        config = InvaliDBConfig(
            query_partitions=2, write_partitions=2,
            execution_model="process", process_workers=2,
        )
        cluster = InvaliDBCluster(broker, config).start()
        app = AppServer("app-1", broker)
        try:
            app.subscribe("items", {"v": {"$gte": 0}})
            for i in range(8):
                app.insert("items", {"_id": i, "v": i})
            settle(cluster, broker)
            snap = cluster.snapshot()
            # One row per grid cell, same shape as the in-process rows.
            assert len(snap["matching"]) == 4
            assert len(snap["sorting"]) == 1
            for row in snap["matching"]:
                assert "coordinates" in row and "pid" in row
            assert sum(
                r["writes_processed"] for r in snap["matching"]
            ) > 0
            # Wire counters aggregate the parent and worker sides.
            wire = snap["workers"]["wire"]
            assert wire["frames_sent"] > 0
            assert wire["bytes_sent"] > 0
            assert wire["messages_encoded"] > 0
            pool = snap["workers"]["pool"]
            assert pool["worker_processes"] == 2
            assert pool["spawned"] == 2
            # The compatibility shim keys rows by coordinates.
            stats = cluster.stats()
            assert len(stats["matching_nodes"]) == 4
        finally:
            app.close()
            cluster.stop()
            broker.close()

    def test_config_gates(self):
        with pytest.raises(ClusterConfigError):
            InvaliDBConfig(process_workers=2)  # needs execution_model
        with pytest.raises(ClusterConfigError):
            InvaliDBConfig(
                execution_model="process",
                execution=ExecutionConfig(mode="threaded"),
            )
        with pytest.raises(ClusterConfigError):
            InvaliDBConfig(execution_model="process", wire_codec="bogus")


class TestTranscriptEquivalence:
    """One seeded workload, three substrates, equivalent streams."""

    def test_substrates_agree(self):
        inline = run_scenario(
            broker_execution=InlineExecutionModel(
                ExecutionConfig(mode="inline", seed=11)
            ),
        )
        threaded = run_scenario(execution_model="threaded")
        process = run_scenario(
            execution_model="process", process_workers=2,
        )
        # Final results are identical everywhere and match the DB.
        for run in (inline, threaded, process):
            assert run["flat_result"] == run["db_flat"]
            assert run["top_result"] == run["db_top"]
        assert inline["flat_result"] == threaded["flat_result"]
        assert inline["flat_result"] == process["flat_result"]
        assert inline["top_result"] == threaded["top_result"]
        assert inline["top_result"] == process["top_result"]
        # The unsorted stream is the same multiset of notifications:
        # substrates may interleave tasks differently but every write
        # produces the same (type, key, version, document) everywhere.
        assert sorted(inline["flat_transcript"]) == \
            sorted(threaded["flat_transcript"])
        assert sorted(inline["flat_transcript"]) == \
            sorted(process["flat_transcript"])

    def test_per_key_order_is_versioned(self):
        process = run_scenario(
            execution_model="process", process_workers=2,
        )
        by_key = {}
        for entry in process["flat_transcript"]:
            by_key.setdefault(entry[1], []).append(entry[2])
        for versions in by_key.values():
            assert versions == sorted(versions)


class TestProcessChaos:
    """kill -9 a worker mid-stream; supervised recovery must converge."""

    def test_hard_worker_kill_recovers(self):
        broker = Broker()
        config = InvaliDBConfig(
            query_partitions=2, write_partitions=2,
            execution_model="process", process_workers=2,
            retention_seconds=0.75,
            supervisor_backoff_base=0.01,
        )
        cluster = InvaliDBCluster(broker, config).start()
        app = AppServer("kill-app", broker, config=config)
        try:
            flat = app.subscribe("items", {"v": {"$gte": 0}})
            top = app.subscribe("items", {}, sort=[("v", -1)], limit=5)
            assert broker.drain(timeout=10.0)
            for i in range(20):
                app.insert("items", {"_id": i, "v": i * 3 % 17})
            settle(cluster, broker)

            victim = cluster._remote_cells[("matching", 0)].pid
            os.kill(victim, signal.SIGKILL)
            # Keep writing through the outage.
            for i in range(20, 35):
                app.insert("items", {"_id": i, "v": i * 5 % 23})

            assert wait_for(
                lambda: cluster.supervisor.stats()["restarts"] >= 1
            ), cluster.supervisor.stats()
            settle(cluster, broker)
            # Let retention lapse so renewal cannot replay stale state,
            # then reconcile the client against the database.
            time.sleep(config.retention_seconds + 0.3)
            app.client.resubscribe_all()
            settle(cluster, broker, rounds=6)

            expected_flat = sorted(
                app.find("items", {"v": {"$gte": 0}}),
                key=lambda d: d["_id"],
            )
            expected_top = app.find("items", {}, sort=[("v", -1)],
                                    limit=5)
            assert wait_for(
                lambda: sorted(flat.result(), key=lambda d: d["_id"])
                == expected_flat
            )
            assert wait_for(lambda: top.result() == expected_top)

            pool = cluster.snapshot()["workers"]["pool"]
            assert pool["deaths"] >= 1
            assert pool["spawned"] >= 3  # replacement worker respawned
        finally:
            app.close()
            cluster.stop()
            broker.close()
