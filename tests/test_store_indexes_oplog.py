"""Index correctness and oplog behaviour tests."""

import pytest

from repro.store.collection import Collection
from repro.store.indexes import HashIndex, OrderedIndex
from repro.store.oplog import Oplog, StaleCursorError
from repro.types import WriteKind


class TestHashIndex:
    def test_lookup(self):
        index = HashIndex("color")
        index.add(1, {"color": "red"})
        index.add(2, {"color": "blue"})
        index.add(3, {"color": "red"})
        assert index.lookup("red") == {1, 3}
        assert index.lookup("green") == set()

    def test_array_elements_indexed(self):
        index = HashIndex("tags")
        index.add(1, {"tags": ["a", "b"]})
        assert index.lookup("a") == {1}
        assert index.lookup(["a", "b"]) == {1}

    def test_remove(self):
        index = HashIndex("c")
        index.add(1, {"c": "x"})
        index.remove(1, {"c": "x"})
        assert index.lookup("x") == set()
        assert len(index) == 0

    def test_missing_field_not_indexed(self):
        index = HashIndex("c")
        index.add(1, {"other": 1})
        assert len(index) == 0


class TestOrderedIndex:
    def test_range_inclusive_exclusive(self):
        index = OrderedIndex("v")
        for key, value in enumerate([10, 20, 30, 40]):
            index.add(key, {"v": value})
        assert index.range(lower=20) == {1, 2, 3}
        assert index.range(lower=20, include_lower=False) == {2, 3}
        assert index.range(upper=30) == {0, 1, 2}
        assert index.range(upper=30, include_upper=False) == {0, 1}
        assert index.range(lower=15, upper=35) == {1, 2}

    def test_range_restricted_to_type_bracket(self):
        index = OrderedIndex("v")
        index.add(1, {"v": 10})
        index.add(2, {"v": "text"})
        assert index.range(lower=5) == {1}

    def test_remove_specific_key_among_duplicates(self):
        index = OrderedIndex("v")
        index.add(1, {"v": 5})
        index.add(2, {"v": 5})
        index.remove(1, {"v": 5})
        assert index.range(lower=5, upper=5) == {2}


class TestIndexedFindEquivalence:
    """An indexed find must return exactly what a full scan returns."""

    @pytest.fixture
    def pair(self):
        plain = Collection("plain")
        indexed = Collection("indexed")
        indexed.ensure_index("v", "ordered")
        indexed.ensure_index("color", "hash")
        for i in range(100):
            doc = {"_id": i, "v": i % 17, "color": f"c{i % 5}"}
            plain.insert(dict(doc))
            indexed.insert(dict(doc))
        return plain, indexed

    @pytest.mark.parametrize(
        "filter_doc",
        [
            {"v": 5},
            {"v": {"$gte": 10}},
            {"v": {"$gt": 3, "$lt": 9}},
            {"color": "c2"},
            {"color": {"$in": ["c1", "c3"]}},
            {"v": {"$gte": 4}, "color": "c0"},
            {"v": {"$lte": 2}, "other": {"$exists": False}},
        ],
    )
    def test_equivalence(self, pair, filter_doc):
        plain, indexed = pair
        expected = {d["_id"] for d in plain.find(filter_doc)}
        actual = {d["_id"] for d in indexed.find(filter_doc)}
        assert actual == expected

    def test_index_created_after_inserts_backfills(self):
        collection = Collection("late")
        for i in range(20):
            collection.insert({"_id": i, "v": i})
        collection.ensure_index("v", "ordered")
        assert {d["_id"] for d in collection.find({"v": {"$gte": 15}})} == {
            15, 16, 17, 18, 19,
        }


class TestOplog:
    def test_sequences_are_monotonic(self):
        oplog = Oplog()
        first = oplog.append("c", WriteKind.INSERT, 1, 1, {"_id": 1})
        second = oplog.append("c", WriteKind.DELETE, 1, 2, None)
        assert second.sequence == first.sequence + 1

    def test_read_from(self):
        oplog = Oplog()
        for i in range(5):
            oplog.append("c", WriteKind.INSERT, i, 1, {"_id": i})
        entries = oplog.read_from(3)
        assert [e.sequence for e in entries] == [3, 4, 5]
        assert oplog.read_from(3, limit=1)[0].sequence == 3

    def test_capped_log_truncates(self):
        oplog = Oplog(capacity=3)
        for i in range(10):
            oplog.append("c", WriteKind.INSERT, i, 1, {"_id": i})
        assert len(oplog) == 3
        assert oplog.horizon == 8

    def test_stale_cursor(self):
        oplog = Oplog(capacity=2)
        for i in range(5):
            oplog.append("c", WriteKind.INSERT, i, 1, {"_id": i})
        with pytest.raises(StaleCursorError):
            oplog.read_from(1)

    def test_push_subscription(self):
        oplog = Oplog()
        seen = []
        unsubscribe = oplog.subscribe(seen.append)
        oplog.append("c", WriteKind.INSERT, 1, 1, {"_id": 1})
        unsubscribe()
        oplog.append("c", WriteKind.INSERT, 2, 1, {"_id": 2})
        assert len(seen) == 1

    def test_entry_converts_to_after_image(self):
        oplog = Oplog()
        entry = oplog.append("c", WriteKind.INSERT, 1, 3, {"_id": 1, "v": 2})
        after = entry.to_after_image()
        assert after.key == 1 and after.version == 3
        assert after.document == {"_id": 1, "v": 2}


class TestExplain:
    def test_full_scan_without_indexes(self):
        collection = Collection("plain")
        for i in range(10):
            collection.insert({"_id": i, "v": i})
        plan = collection.explain({"v": {"$gte": 5}})
        assert plan["plan"] == "full-scan"
        assert plan["documents_examined"] == 10
        assert plan["indexes_available"] == []

    def test_index_plan_reports_candidates(self):
        collection = Collection("indexed")
        collection.ensure_index("v", "ordered")
        for i in range(10):
            collection.insert({"_id": i, "v": i})
        plan = collection.explain({"v": {"$gte": 5}})
        assert plan["plan"] == "index"
        assert plan["documents_examined"] == 5
        assert plan["documents_total"] == 10
        assert plan["indexes_available"] == ["v"]

    def test_unindexed_predicate_falls_back(self):
        collection = Collection("partial")
        collection.ensure_index("v", "hash")
        collection.insert({"_id": 1, "v": 1, "w": 1})
        plan = collection.explain({"w": 1})
        assert plan["plan"] == "full-scan"

    def test_empty_filter_is_full_scan(self):
        collection = Collection("empty")
        collection.ensure_index("v", "hash")
        assert collection.explain({})["plan"] == "full-scan"
