"""Flight-recorder tests: ring semantics, dump triggers, postmortem.

Covers the :class:`~repro.obs.flight.FlightRecorder` unit behavior
(bounded ring wraparound, dump gating, broken-provider isolation), the
cluster-level dump triggers — supervised restart after a scripted
crash, overload escalation, and a ``kill -9``'d worker process — the
SLO-driven health feed, and the ``python -m repro inspect
--postmortem`` analysis view over a committed dump fixture.
"""

import json
import os
import signal
import socket
import time

import pytest

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.event.broker import Broker
from repro.obs.flight import FlightRecorder, load_dump
from repro.obs.inspector import render, render_postmortem
from repro.obs.telemetry import TelemetryConfig
from repro.runtime.execution import ExecutionConfig, InlineExecutionModel
from repro.runtime.faults import FaultPlan

FIXTURE = os.path.join(
    os.path.dirname(__file__), "fixtures", "flight_postmortem.json"
)

process_model = pytest.mark.skipif(
    not (hasattr(os, "fork") and hasattr(socket, "AF_UNIX")),
    reason="process model needs fork + AF_UNIX socketpairs",
)


class SteppingClock:
    """Deterministic time source: every read advances a fixed step."""

    def __init__(self, start: float = 1000.0, step: float = 0.001):
        self.now = start
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


# ---------------------------------------------------------------------------
# Unit: the recorder itself
# ---------------------------------------------------------------------------


class TestRecorder:
    def build(self, capacity=4, directory=None):
        ticks = iter(range(10_000))
        return FlightRecorder(
            node="t", capacity=capacity, directory=directory,
            clock=lambda: float(next(ticks)),
        )

    def test_ring_wraparound_keeps_newest(self):
        recorder = self.build(capacity=4)
        for i in range(10):
            recorder.record("tick", i=i)
        events = recorder.events()
        assert [event["i"] for event in events] == [6, 7, 8, 9]
        snap = recorder.snapshot()
        assert snap["events_recorded"] == 10
        assert snap["events_buffered"] == 4

    def test_dump_without_directory_is_a_noop(self):
        recorder = self.build(directory=None)
        recorder.record("tick")
        assert recorder.dump("anything") is None
        assert recorder.snapshot()["dumps_written"] == 0

    def test_broken_provider_does_not_lose_the_dump(self):
        recorder = self.build()

        def broken():
            raise RuntimeError("provider exploded")

        recorder.add_context("ok", lambda: {"fine": 1})
        recorder.add_context("bad", broken)
        document = recorder.build_dump("test")
        assert document["context"]["ok"] == {"fine": 1}
        assert "provider exploded" in document["context"]["bad"]["error"]

    def test_dump_writes_parseable_json(self, tmp_path):
        recorder = self.build(directory=str(tmp_path))
        recorder.record("crash", component="matching", task=1)
        path = recorder.dump("weird reason/with:stuff")
        assert path is not None and os.path.exists(path)
        assert "weird-reason-with-stuff" in os.path.basename(path)
        document = load_dump(path)
        assert document["version"] == 1
        assert document["reason"] == "weird reason/with:stuff"
        assert document["events"][0]["kind"] == "crash"
        # Round-trips through plain json (artifact-upload friendly).
        json.dumps(document)

    def test_dump_failure_is_counted_not_raised(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        recorder = self.build(directory=str(blocker / "sub"))
        recorder.record("tick")
        assert recorder.dump("x") is None
        assert recorder.snapshot()["dump_errors"] == 1


# ---------------------------------------------------------------------------
# Cluster integration (deterministic inline model)
# ---------------------------------------------------------------------------


def inline_cluster(fault_plan=None, **overrides):
    model = InlineExecutionModel(
        ExecutionConfig(mode="inline", seed=5, fault_plan=fault_plan)
    )
    broker = Broker(execution=model)
    kwargs = dict(
        query_partitions=2, write_partitions=2,
        clock=SteppingClock(),
        telemetry=TelemetryConfig(trace_sample_rate=1.0),
    )
    kwargs.update(overrides)
    config = InvaliDBConfig(**kwargs)
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("flight-app", broker, config=config)
    return model, broker, cluster, app


def shutdown(model, broker, cluster, app):
    app.close()
    cluster.stop()
    broker.close()
    model.shutdown()


def workload(app, count=40):
    for i in range(count):
        app.insert("items", {"_id": i, "v": i})
    for i in range(0, count, 4):
        app.update("items", i, {"$set": {"v": i + 100}})


class TestClusterIntegration:
    def test_snapshot_and_inspector_carry_slo_and_flight(self):
        model, broker, cluster, app = inline_cluster()
        try:
            app.subscribe("items", {"v": {"$gte": 0}})
            assert broker.drain()
            workload(app)
            assert broker.drain()
            snap = cluster.snapshot()
            assert snap["flight"]["capacity"] == 256
            slo = snap["slo"]
            assert slo["notifications"] > 0
            assert slo["queries"][0]["notifications"] > 0
            assert "burn_rate" in slo
            text = render(snap)
            assert "SLO: target" in text
            assert "per-query burn rates" in text
            assert "flight recorder:" in text
        finally:
            shutdown(model, broker, cluster, app)

    def test_supervisor_restart_dumps_flight_recorder(self, tmp_path):
        plan = FaultPlan().rule("mailbox", "matching*", "crash", at=[30])
        model, broker, cluster, app = inline_cluster(
            fault_plan=plan,
            retention_seconds=300.0,
            flight_recorder_dir=str(tmp_path),
        )
        try:
            app.subscribe("items", {"v": {"$gte": 0}})
            assert broker.drain()
            workload(app)
            assert broker.drain()
            assert cluster.supervisor.stats()["restarts"] >= 1
            dumps = sorted(tmp_path.glob("flight-*supervisor-restart.json"))
            assert dumps, "supervised restart must write a flight dump"
            document = load_dump(str(dumps[0]))
            kinds = [event["kind"] for event in document["events"]]
            assert "crash" in kinds
            assert "restart" in kinds
            text = render_postmortem(document)
            assert "supervisor-restart" in text
            assert "crash" in text
        finally:
            shutdown(model, broker, cluster, app)

    def test_overload_escalation_dumps_flight_recorder(self, tmp_path):
        model, broker, cluster, app = inline_cluster(
            overload_control=True,
            force_health="overloaded",
            flight_recorder_dir=str(tmp_path),
        )
        try:
            assert broker.drain()
            cluster.overload.evaluate()
            dumps = sorted(tmp_path.glob("flight-*overload-escalation.json"))
            assert dumps, "escalation to overloaded must write a dump"
            document = load_dump(str(dumps[0]))
            transitions = [event for event in document["events"]
                           if event["kind"] == "health-transition"]
            assert transitions
            assert transitions[-1]["state"] == "overloaded"
            assert transitions[-1]["previous"] == "healthy"
            # The hook fires on the transition, not on every tick.
            cluster.overload.evaluate()
            assert len(sorted(
                tmp_path.glob("flight-*overload-escalation.json")
            )) == 1
        finally:
            shutdown(model, broker, cluster, app)

    def test_slo_health_feed_escalates_on_sustained_lag(self):
        model, broker, cluster, app = inline_cluster(
            overload_control=True,
            slo_health_feed=True,
            # Every stepping-clock lag breaches a microsecond target...
            slo_latency_target=1e-6,
            # ...and admission-path evaluations are disabled so the two
            # explicit evaluate() calls control the lag window exactly.
            health_eval_interval=1e9,
        )
        try:
            app.subscribe("items", {"v": {"$gte": 0}})
            assert broker.drain()
            cluster.overload.evaluate()  # baseline the lag window
            workload(app, count=20)
            assert broker.drain()
            cluster.overload.evaluate()
            states = cluster.overload.monitor.states()
            assert states.get("slo") == "overloaded"
            assert cluster.overload.state == "overloaded"
        finally:
            shutdown(model, broker, cluster, app)


# ---------------------------------------------------------------------------
# Process model: a kill -9'd worker leaves a parseable dump behind
# ---------------------------------------------------------------------------


@process_model
def test_worker_kill9_writes_flight_dump(tmp_path):
    broker = Broker()
    config = InvaliDBConfig(
        query_partitions=2, write_partitions=2,
        execution_model="process", process_workers=2,
        retention_seconds=300.0, supervisor_backoff_base=0.05,
        notification_coalescing=False,
        telemetry=TelemetryConfig(trace_sample_rate=1.0),
        flight_recorder_dir=str(tmp_path),
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("flight-kill", broker, config=config)
    try:
        app.subscribe("items", {"v": {"$gte": 0}})
        broker.drain(10.0)
        cluster.drain(10.0)
        for i in range(10):
            app.insert("items", {"_id": i, "v": i})
        broker.drain(10.0)
        cluster.drain(10.0)
        victim = cluster._remote_cells[("matching", 0)].pid
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 8.0
        dumps = []
        while time.monotonic() < deadline:
            dumps = [path for path in tmp_path.iterdir()
                     if "worker-death" in path.name]
            if dumps:
                break
            time.sleep(0.05)
        assert dumps, "no worker-death flight dump was written"
        # Let the supervised restart finish before teardown, so the
        # backoff timer does not fire into a stopped worker pool.
        while time.monotonic() < deadline:
            if cluster.supervisor.stats()["restarts"] >= 1:
                break
            time.sleep(0.05)
        document = load_dump(str(dumps[0]))
        assert document["version"] == 1
        assert document["reason"] == "worker-death"
        kinds = [event["kind"] for event in document["events"]]
        assert "worker-death" in kinds
        assert document["context"]["grid"]["execution_model"] == "process"
        text = render_postmortem(document)
        assert "worker-death" in text
    finally:
        app.close()
        cluster.stop()
        broker.close()


# ---------------------------------------------------------------------------
# Postmortem analysis view over the committed fixture
# ---------------------------------------------------------------------------


class TestPostmortemFixture:
    def test_fixture_renders_every_section(self):
        document = load_dump(FIXTURE)
        text = render_postmortem(document)
        assert "flight recorder postmortem" in text
        assert "reason: supervisor-restart" in text
        assert "event ring" in text
        assert "worker-death" in text
        assert "supervisor" in text
        assert "SLO: target" in text
        assert "recent traces" in text
        assert "replay" in text

    def test_render_tolerates_minimal_dump(self):
        text = render_postmortem({"reason": "x", "events": [],
                                  "context": {}})
        assert "event ring: empty" in text

    def test_postmortem_cli_exits_zero(self, capsys):
        from repro.__main__ import main

        assert main(["inspect", "--postmortem", FIXTURE]) == 0
        out = capsys.readouterr().out
        assert "flight recorder postmortem" in out
        assert "event ring" in out
