"""Indexed-vs-naive equivalence: the property test behind the index.

Two :class:`FilteringNode` instances — one with the predicate index and
shared memoization, one scanning every query — are driven with the SAME
randomized sequence of query registrations, deactivations, writes and
deletes (including mid-stream subscriptions that exercise retention
replay).  The indexed node must produce the *identical* MatchEvent
stream: same events, same order, after every single operation.  Any
divergence is a lost or spurious notification.

The query pool deliberately mixes indexable shapes (equalities, $in,
one- and two-sided ranges, all-indexable $or, nested paths, arrays)
with residual ones (negations, $exists, the empty filter) and
unsatisfiable access predicates, plus a foreign-collection query.
"""

from typing import Any, Dict

from hypothesis import given, settings, strategies as st

from repro.core.filtering import FilteringNode
from repro.core.partitioning import NodeCoordinates
from repro.query.engine import MongoQueryEngine, Query
from repro.types import AfterImage, WriteKind

KEYS = list(range(6))

QUERY_POOL = [
    Query({"v": {"$gte": 10, "$lt": 20}}),
    Query({"v": 5}),
    Query({"tag": {"$in": [0, 2]}}),
    Query({"v": {"$ne": 7}}),
    Query({}),
    Query({"$or": [{"v": 3}, {"v": {"$gt": 25}}]}),
    Query({"nested.x": {"$lte": 1}}),
    Query({"arr": {"$gte": 12, "$lt": 14}}),
    Query({"v": {"$exists": True}}),
    Query({"v": {"$gt": 8}}),
    Query({"v": 1}, collection="other"),
    Query({"tag": {"$in": []}}),
    Query({"v": {"$gte": 20, "$lt": 10}}),
]

write_op = st.tuples(
    st.just("write"),
    st.sampled_from(["insert", "update", "delete"]),
    st.sampled_from(KEYS),
    st.integers(min_value=0, max_value=30),
)
register_op = st.tuples(
    st.just("register"), st.integers(0, len(QUERY_POOL) - 1)
)
deactivate_op = st.tuples(
    st.just("deactivate"), st.integers(0, len(QUERY_POOL) - 1)
)

operations = st.lists(
    st.one_of(write_op, register_op, deactivate_op),
    min_size=0,
    max_size=50,
)


def make_document(key: Any, value: int) -> Dict[str, Any]:
    return {
        "_id": key,
        "v": value,
        "tag": value % 3,
        "nested": {"x": value % 4},
        "arr": [value, value + 5],
    }


class Driver:
    """Replays one op sequence against an indexed and a naive node."""

    def __init__(self) -> None:
        self.indexed = FilteringNode(
            NodeCoordinates(0, 0), use_index=True, memoize=True
        )
        self.naive = FilteringNode(
            NodeCoordinates(0, 0), use_index=False, memoize=False
        )
        self.engine = MongoQueryEngine()
        self.versions: Dict[Any, int] = {key: 0 for key in KEYS}
        self.alive: Dict[Any, Dict[str, Any]] = {}

    def apply(self, op) -> None:
        if op[0] == "write":
            self._write(*op[1:])
        elif op[0] == "register":
            self._register(QUERY_POOL[op[1]])
        else:
            self._deactivate(QUERY_POOL[op[1]])

    def _write(self, kind: str, key: Any, value: int) -> None:
        if kind == "delete":
            if key not in self.alive:
                return
            del self.alive[key]
            self.versions[key] += 1
            image = AfterImage(key, self.versions[key], WriteKind.DELETE,
                               None)
        else:
            self.versions[key] += 1
            document = make_document(key, value)
            self.alive[key] = document
            write_kind = (WriteKind.INSERT if kind == "insert"
                          else WriteKind.UPDATE)
            image = AfterImage(key, self.versions[key], write_kind, document)
        got = self.indexed.process_write(image, now=0.0)
        expected = self.naive.process_write(image, now=0.0)
        assert got == expected, (image, got, expected)

    def _register(self, query: Query) -> None:
        # The pull-based bootstrap reflects the current database state;
        # retained after-images replay on registration in both nodes.
        bootstrap = [
            document for document in self.alive.values()
            if query.collection == "default"
            and self.engine.matches(query, document)
        ]
        versions = {doc["_id"]: self.versions[doc["_id"]]
                    for doc in bootstrap}
        got = self.indexed.register_query(query, bootstrap, versions,
                                          now=0.0)
        expected = self.naive.register_query(query, bootstrap, versions,
                                             now=0.0)
        assert got == expected, (query.filter_doc, got, expected)

    def _deactivate(self, query: Query) -> None:
        got = self.indexed.deactivate_query(query.query_id)
        expected = self.naive.deactivate_query(query.query_id)
        assert got == expected

    def check_final_state(self) -> None:
        assert (self.indexed.active_queries()
                == self.naive.active_queries())
        for query_id in self.naive.active_queries():
            got = self.indexed.result_partition(query_id)
            expected = self.naive.result_partition(query_id)
            assert sorted(got, key=lambda d: str(d["_id"])) == sorted(
                expected, key=lambda d: str(d["_id"])
            ), query_id


class TestEventStreamEquivalence:
    @given(operations)
    @settings(max_examples=150, deadline=None)
    def test_indexed_equals_naive_after_every_operation(self, ops):
        driver = Driver()
        for op in ops:
            driver.apply(op)
        driver.check_final_state()

    @given(operations)
    @settings(max_examples=60, deadline=None)
    def test_indexed_never_does_more_match_work(self, ops):
        """Pruning must only ever SKIP evaluations, never add them."""
        driver = Driver()
        for op in ops:
            driver.apply(op)
        assert (driver.indexed.matched_operations
                <= driver.naive.matched_operations)

    @given(operations, st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_mid_stream_subscription_replay_is_equivalent(self, ops, split):
        """Register EVERY pool query midway with an empty bootstrap: the
        retention buffer replays the pre-subscription writes, and the
        replayed event streams must agree too."""
        driver = Driver()
        writes = [op for op in ops if op[0] == "write"]
        split = min(split, len(writes))
        for op in writes[:split]:
            driver.apply(op)
        for query in QUERY_POOL:
            got = driver.indexed.register_query(query, [], {}, now=0.0)
            expected = driver.naive.register_query(query, [], {}, now=0.0)
            assert got == expected, query.filter_doc
        for op in writes[split:]:
            driver.apply(op)
        driver.check_final_state()


class TestMaintainedResultMatchesRecomputation:
    """Indexed maintenance equals from-scratch re-execution (the core
    invariant of test_core_properties, now under candidate pruning)."""

    @given(operations)
    @settings(max_examples=80, deadline=None)
    def test_partitions_equal_recomputation(self, ops):
        driver = Driver()
        for query in QUERY_POOL:
            driver.apply(("register", QUERY_POOL.index(query)))
        for op in ops:
            if op[0] == "write":
                driver.apply(op)
        engine = MongoQueryEngine()
        for query in QUERY_POOL:
            if query.collection != "default":
                continue
            maintained = {
                doc["_id"]
                for doc in driver.indexed.result_partition(query.query_id)
            }
            expected = {
                key for key, doc in driver.alive.items()
                if engine.matches(query, doc)
            }
            assert maintained == expected, query.filter_doc


def test_retention_window_expiry_is_equivalent():
    """Writes outside the retention window replay on neither node."""
    indexed = FilteringNode(NodeCoordinates(0, 0), retention_seconds=1.0,
                            use_index=True)
    naive = FilteringNode(NodeCoordinates(0, 0), retention_seconds=1.0,
                          use_index=False)
    image = AfterImage(1, 1, WriteKind.INSERT, make_document(1, 15))
    indexed.process_write(image, now=0.0)
    naive.process_write(image, now=0.0)
    query = Query({"v": {"$gte": 10, "$lt": 20}})
    assert (indexed.register_query(query, [], {}, now=60.0)
            == naive.register_query(query, [], {}, now=60.0)
            == [])


def test_duplicate_events_ordering_matches_naive_exactly():
    """Candidate sets are evaluated in registration order, so multi-query
    hits produce events in exactly the naive (scan) order."""
    indexed = FilteringNode(NodeCoordinates(0, 0), use_index=True)
    naive = FilteringNode(NodeCoordinates(0, 0), use_index=False)
    queries = [
        Query({"v": {"$gte": 0}}),
        Query({"v": {"$lt": 100}}),
        Query({"v": {"$gte": 10, "$lt": 20}}),
        Query({"v": 15}),
        Query({}),
    ]
    for node in (indexed, naive):
        for query in queries:
            node.register_query(query, [], {}, now=0.0)
    image = AfterImage(1, 1, WriteKind.INSERT, {"_id": 1, "v": 15})
    got = indexed.process_write(image, now=0.0)
    expected = naive.process_write(image, now=0.0)
    assert [e.query_id for e in got] == [e.query_id for e in expected]
    assert len(got) == 5
