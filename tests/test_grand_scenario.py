"""One grand integration scenario exercising everything at once.

A 3x3 grid serving two app servers, three collections, unsorted and
sorted subscriptions, a live aggregate view, a live join view and a
query cache — under interleaved churn — finishing with a global
consistency audit of every maintained artifact against fresh pull-based
queries.
"""

import random
import time

import pytest

from repro.cache.query_cache import InvalidatingQueryCache
from repro.core.aggregation import AggregateSpec
from repro.core.views import LiveAggregateView, LiveJoinView
from repro.store.database import Database

from tests.conftest import settle


def wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def test_grand_scenario(broker, cluster_factory, app_server_factory):
    cluster = cluster_factory(3, 3)
    shared_db = Database()
    app_a = app_server_factory("grand-a", database=shared_db)
    app_b = app_server_factory("grand-b", database=shared_db)

    # --- artifacts under test -------------------------------------------
    open_orders_a = app_a.subscribe("orders", {"status": "open"})
    top_products = app_a.subscribe(
        "products", {"stock": {"$gt": 0}},
        sort=[("price", -1)], limit=5,
    )
    open_orders_b = app_b.subscribe("orders", {"status": "open"})
    revenue_view = LiveAggregateView(
        app_a, "orders", {"status": "open"},
        (AggregateSpec("count"), AggregateSpec("sum", "total")),
    )
    order_customer_join = LiveJoinView(
        app_a,
        left=("orders", {"status": "open"}, "customer_id"),
        right=("customers", {"active": True}, "_id"),
    )
    cache = InvalidatingQueryCache(app_b)

    # --- churn ------------------------------------------------------------
    rng = random.Random(4711)
    order_keys, product_keys, customer_keys = set(), set(), set()
    for step in range(300):
        app = app_a if rng.random() < 0.5 else app_b
        dice = rng.random()
        if dice < 0.4:
            key = f"order-{step}"
            app.insert("orders", {
                "_id": key, "status": rng.choice(["open", "closed"]),
                "total": rng.randrange(10, 500),
                "customer_id": f"cust-{rng.randrange(8)}",
            })
            order_keys.add(key)
        elif dice < 0.55 and order_keys:
            key = rng.choice(sorted(order_keys))
            app.update("orders", key,
                       {"$set": {"status": rng.choice(["open", "closed"])}})
        elif dice < 0.7:
            key = f"prod-{rng.randrange(30)}"
            app.save("products", {
                "_id": key, "price": rng.randrange(1, 1000),
                "stock": rng.randrange(0, 5),
            })
            product_keys.add(key)
        elif dice < 0.85:
            key = f"cust-{rng.randrange(8)}"
            app.save("customers", {
                "_id": key, "active": rng.random() < 0.7,
            })
            customer_keys.add(key)
        else:
            cache.find("orders", {"status": "open"})
        if step % 50 == 49:
            settle(cluster, broker)

    settle(cluster, broker, rounds=6)

    # --- global audit ------------------------------------------------------
    open_now = {d["_id"] for d in shared_db["orders"].find(
        {"status": "open"})}
    assert wait_for(
        lambda: {d["_id"] for d in open_orders_a.result()} == open_now
    ), "app A's unsorted subscription diverged"
    assert wait_for(
        lambda: {d["_id"] for d in open_orders_b.result()} == open_now
    ), "app B's unsorted subscription diverged"

    expected_top = shared_db["products"].find(
        {"stock": {"$gt": 0}}, sort=[("price", -1)], limit=5
    )
    assert wait_for(
        lambda: [d["_id"] for d in top_products.result()]
        == [d["_id"] for d in expected_top]
    ), "sorted top-products subscription diverged"

    open_orders_docs = shared_db["orders"].find({"status": "open"})
    assert wait_for(
        lambda: revenue_view.value()["count"] == len(open_orders_docs)
    ), "aggregate count diverged"
    assert revenue_view.value()["sum(total)"] == sum(
        d["total"] for d in open_orders_docs
    ), "aggregate sum diverged"

    active_customers = {d["_id"] for d in shared_db["customers"].find(
        {"active": True})}
    expected_pairs = {
        f"{o['_id']}|{o['customer_id']}"
        for o in open_orders_docs
        if o["customer_id"] in active_customers
    }
    assert wait_for(
        lambda: {p["_id"] for p in order_customer_join.pairs()}
        == expected_pairs
    ), "join view diverged"

    cached = cache.find("orders", {"status": "open"})
    assert {d["_id"] for d in cached} == open_now, "cache served stale data"

    revenue_view.close()
    order_customer_join.close()
    cache.close()
