"""Query object and pluggable engine tests."""

import pytest

from repro.errors import QueryParseError
from repro.query.engine import MongoQueryEngine, Query


class TestQueryValidation:
    def test_limit_requires_sort(self):
        with pytest.raises(QueryParseError):
            Query({"a": 1}, limit=5)

    def test_offset_requires_sort(self):
        with pytest.raises(QueryParseError):
            Query({"a": 1}, offset=2)

    def test_negative_limit_rejected(self):
        with pytest.raises(QueryParseError):
            Query({"a": 1}, sort=[("a", 1)], limit=-1)

    def test_negative_offset_rejected(self):
        with pytest.raises(QueryParseError):
            Query({"a": 1}, sort=[("a", 1)], offset=-1)

    def test_sorted_query_classification(self):
        assert not Query({"a": 1}).is_sorted
        assert Query({"a": 1}, sort=[("a", 1)]).is_sorted
        assert Query({"a": 1}, sort=[("a", 1)]).needs_sorting_stage


class TestQueryRewriting:
    """Section 5.2: offset removed, limit extended by offset + slack."""

    def test_unsorted_query_unchanged(self):
        query = Query({"a": 1})
        assert query.rewritten_for_subscription(5) is query

    def test_sorted_without_limit_or_offset_unchanged(self):
        query = Query({"a": 1}, sort=[("a", 1)])
        assert query.rewritten_for_subscription(5) is query

    def test_offset_removed_and_limit_extended(self):
        query = Query({"a": 1}, sort=[("a", 1)], limit=3, offset=2)
        rewritten = query.rewritten_for_subscription(slack=4)
        assert rewritten.offset == 0
        assert rewritten.limit == 2 + 3 + 4

    def test_limit_only_extension(self):
        query = Query({"a": 1}, sort=[("a", 1)], limit=10)
        rewritten = query.rewritten_for_subscription(slack=5)
        assert rewritten.limit == 15
        assert rewritten.offset == 0

    def test_rewritten_query_keeps_filter_and_sort(self):
        query = Query({"a": {"$gt": 1}}, sort=[("b", -1)], limit=3, offset=1)
        rewritten = query.rewritten_for_subscription(2)
        assert rewritten.filter_doc == query.filter_doc
        assert rewritten.sort == query.sort


class TestMongoQueryEngine:
    def setup_method(self):
        self.engine = MongoQueryEngine()

    def test_parse_and_match(self):
        query = self.engine.parse({"a": {"$gte": 5}})
        assert self.engine.matches(query, {"a": 7})
        assert not self.engine.matches(query, {"a": 3})

    def test_sort(self):
        query = self.engine.parse({}, sort=[("x", 1)])
        docs = [{"_id": 2, "x": 5}, {"_id": 1, "x": 3}]
        assert [d["_id"] for d in self.engine.sort(query, docs)] == [1, 2]

    def test_sort_without_spec_preserves_order(self):
        query = self.engine.parse({})
        docs = [{"_id": 2}, {"_id": 1}]
        assert self.engine.sort(query, docs) == docs

    def test_interpret_after_image(self):
        assert self.engine.interpret_after_image({"_id": 1}) == {"_id": 1}
        with pytest.raises(QueryParseError):
            self.engine.interpret_after_image("not-a-doc")

    def test_engine_alignment_with_collection(self):
        """The real-time engine and the pull-based store must agree
        (the alignment requirement of Section 5.3)."""
        from repro.store.collection import Collection

        collection = Collection("t")
        docs = [
            {"_id": index, "v": index % 7, "s": f"name-{index % 3}"}
            for index in range(40)
        ]
        for doc in docs:
            collection.insert(doc)
        filter_doc = {"v": {"$gte": 2, "$lt": 6}, "s": {"$ne": "name-1"}}
        query = self.engine.parse(filter_doc)
        pull_result = {d["_id"] for d in collection.find(filter_doc)}
        push_result = {
            d["_id"] for d in docs if self.engine.matches(query, d)
        }
        assert pull_result == push_result
