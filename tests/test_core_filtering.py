"""Filtering-stage tests: match transitions, replay, race closure."""

import pytest

from repro.core.filtering import FilteringNode
from repro.core.partitioning import NodeCoordinates
from repro.query.engine import Query
from repro.types import AfterImage, MatchType, WriteKind


def node(retention=5.0):
    return FilteringNode(NodeCoordinates(0, 0), retention_seconds=retention)


def insert(key, doc, version=1, ts=0.0, collection="default"):
    return AfterImage(key=key, version=version, kind=WriteKind.INSERT,
                      document={"_id": key, **doc}, timestamp=ts,
                      collection=collection)


def update(key, doc, version, ts=0.0):
    return AfterImage(key=key, version=version, kind=WriteKind.UPDATE,
                      document={"_id": key, **doc}, timestamp=ts)


def delete(key, version, ts=0.0):
    return AfterImage(key=key, version=version, kind=WriteKind.DELETE,
                      document=None, timestamp=ts)


QUERY = Query({"v": {"$gte": 10}})


class TestMatchTransitions:
    def test_add_on_new_match(self):
        n = node()
        n.register_query(QUERY, [], {}, now=0.0)
        events = n.process_write(insert(1, {"v": 15}), now=0.0)
        assert len(events) == 1
        assert events[0].match_type is MatchType.ADD
        assert events[0].document["v"] == 15

    def test_change_on_updated_match(self):
        n = node()
        n.register_query(QUERY, [], {}, now=0.0)
        n.process_write(insert(1, {"v": 15}), now=0.0)
        events = n.process_write(update(1, {"v": 20}, version=2), now=0.0)
        assert [e.match_type for e in events] == [MatchType.CHANGE]

    def test_remove_when_no_longer_matching(self):
        n = node()
        n.register_query(QUERY, [], {}, now=0.0)
        n.process_write(insert(1, {"v": 15}), now=0.0)
        events = n.process_write(update(1, {"v": 5}, version=2), now=0.0)
        assert [e.match_type for e in events] == [MatchType.REMOVE]

    def test_remove_on_delete_carries_last_document(self):
        n = node()
        n.register_query(QUERY, [], {}, now=0.0)
        n.process_write(insert(1, {"v": 15}), now=0.0)
        events = n.process_write(delete(1, version=2), now=0.0)
        assert events[0].match_type is MatchType.REMOVE
        assert events[0].document == {"_id": 1, "v": 15}

    def test_irrelevant_writes_are_filtered_out(self):
        """Section 5.2: no events for obviously irrelevant writes."""
        n = node()
        n.register_query(QUERY, [], {}, now=0.0)
        assert n.process_write(insert(1, {"v": 1}), now=0.0) == []
        assert n.process_write(update(1, {"v": 2}, version=2), now=0.0) == []
        assert n.process_write(delete(1, version=3), now=0.0) == []

    def test_wrong_collection_is_irrelevant(self):
        n = node()
        n.register_query(Query({"v": 1}, collection="a"), [], {}, now=0.0)
        events = n.process_write(
            insert(1, {"v": 1}, collection="b"), now=0.0
        )
        assert events == []

    def test_multiple_queries_evaluated_per_write(self):
        n = node()
        n.register_query(Query({"v": {"$gte": 10}}), [], {}, now=0.0)
        n.register_query(Query({"v": {"$lt": 100}}), [], {}, now=0.0)
        events = n.process_write(insert(1, {"v": 50}), now=0.0)
        assert len(events) == 2
        assert all(e.match_type is MatchType.ADD for e in events)


class TestBootstrap:
    def test_bootstrap_members_yield_change_not_add(self):
        n = node()
        n.register_query(QUERY, [{"_id": 1, "v": 15}], {1: 1}, now=0.0)
        events = n.process_write(update(1, {"v": 16}, version=2), now=0.0)
        assert [e.match_type for e in events] == [MatchType.CHANGE]

    def test_bootstrap_member_can_be_removed(self):
        n = node()
        n.register_query(QUERY, [{"_id": 1, "v": 15}], {1: 1}, now=0.0)
        events = n.process_write(delete(1, version=2), now=0.0)
        assert [e.match_type for e in events] == [MatchType.REMOVE]

    def test_result_partition_tracks_current_members(self):
        n = node()
        n.register_query(QUERY, [{"_id": 1, "v": 15}], {1: 1}, now=0.0)
        n.process_write(insert(2, {"v": 30}), now=0.0)
        n.process_write(delete(1, version=2), now=0.0)
        partition = n.result_partition(QUERY.query_id)
        assert [d["_id"] for d in partition] == [2]


class TestWriteSubscriptionRace:
    """Section 5.1: a write processed before the subscription arrives is
    replayed from the retention buffer on registration."""

    def test_replay_emits_missed_add(self):
        n = node()
        # Write arrives BEFORE the subscription (version 1, not yet in
        # any bootstrap result).
        n.process_write(insert(1, {"v": 15}, ts=0.0), now=0.0)
        events = n.register_query(QUERY, [], {}, now=0.5)
        assert [e.match_type for e in events] == [MatchType.ADD]
        assert events[0].key == 1

    def test_replay_skips_writes_already_in_bootstrap(self):
        n = node()
        n.process_write(insert(1, {"v": 15}, ts=0.0), now=0.0)
        # The bootstrap result already reflects version 1.
        events = n.register_query(
            QUERY, [{"_id": 1, "v": 15}], {1: 1}, now=0.5
        )
        assert events == []

    def test_replay_applies_newer_delete_over_bootstrap(self):
        n = node()
        n.process_write(delete(1, version=2, ts=0.0), now=0.0)
        # Stale bootstrap still contains the item at version 1 (the
        # pull-based query ran just before the delete).
        events = n.register_query(
            QUERY, [{"_id": 1, "v": 15}], {1: 1}, now=0.5
        )
        assert [e.match_type for e in events] == [MatchType.REMOVE]

    def test_replay_outside_retention_window_is_lost(self):
        n = node(retention=1.0)
        n.process_write(insert(1, {"v": 15}, ts=0.0), now=0.0)
        events = n.register_query(QUERY, [], {}, now=60.0)
        assert events == []


class TestStaleness:
    def test_stale_write_ignored_entirely(self):
        n = node()
        n.register_query(QUERY, [], {}, now=0.0)
        n.process_write(update(1, {"v": 15}, version=3), now=0.0)
        events = n.process_write(update(1, {"v": 5}, version=2), now=0.0)
        assert events == []
        partition = n.result_partition(QUERY.query_id)
        assert [d["v"] for d in partition] == [15]

    def test_out_of_order_delivery_converges(self):
        """Delete arriving before a late older update must win."""
        n = node()
        n.register_query(QUERY, [], {}, now=0.0)
        n.process_write(insert(1, {"v": 15}, ts=0.0), now=0.0)
        n.process_write(delete(1, version=3), now=0.0)
        late = n.process_write(update(1, {"v": 99}, version=2), now=0.0)
        assert late == []
        assert n.result_partition(QUERY.query_id) == []


class TestLifecycle:
    def test_deactivate(self):
        n = node()
        n.register_query(QUERY, [], {}, now=0.0)
        assert n.deactivate_query(QUERY.query_id)
        assert not n.deactivate_query(QUERY.query_id)
        assert n.process_write(insert(1, {"v": 15}), now=0.0) == []

    def test_needs_sorting_flag(self):
        n = node()
        sorted_query = Query({"v": {"$gte": 10}}, sort=[("v", 1)])
        n.register_query(sorted_query, [], {}, now=0.0)
        events = n.process_write(insert(1, {"v": 15}), now=0.0)
        assert events[0].needs_sorting

    def test_re_registration_replaces_state(self):
        n = node()
        n.register_query(QUERY, [{"_id": 1, "v": 15}], {1: 1}, now=0.0)
        n.register_query(QUERY, [{"_id": 2, "v": 20}], {2: 1}, now=0.0)
        partition = n.result_partition(QUERY.query_id)
        assert [d["_id"] for d in partition] == [2]
        assert n.query_count == 1

    def test_re_registration_keeps_reverse_map_consistent(self):
        n = node()
        n.register_query(QUERY, [{"_id": 1, "v": 15}], {1: 1}, now=0.0)
        n.register_query(QUERY, [{"_id": 2, "v": 20}], {2: 1}, now=0.0)
        # Key 1 left the result on re-registration: a write making it
        # non-matching must not produce a spurious remove.
        assert n.process_write(update(1, {"v": 5}, version=2), now=0.0) == []
        events = n.process_write(delete(2, version=2), now=0.0)
        assert [e.match_type for e in events] == [MatchType.REMOVE]


class TestMatchedOperationsCounter:
    """matched_operations counts actual engine invocations — deletes and
    foreign-collection writes never reach the engine."""

    def test_counts_engine_invocations_only(self):
        n = FilteringNode(NodeCoordinates(0, 0), use_index=False)
        n.register_query(Query({"v": {"$gte": 10}}), [], {}, now=0.0)
        n.register_query(Query({"v": {"$lt": 100}}), [], {}, now=0.0)
        n.process_write(insert(1, {"v": 50}), now=0.0)
        assert n.matched_operations == 2
        n.process_write(delete(1, version=2), now=0.0)
        assert n.matched_operations == 2  # deletes skip the engine
        n.process_write(insert(2, {"v": 1}, collection="b"), now=0.0)
        assert n.matched_operations == 2  # wrong collection too

    def test_stale_writes_do_not_count(self):
        n = node()
        n.register_query(QUERY, [], {}, now=0.0)
        n.process_write(update(1, {"v": 15}, version=3), now=0.0)
        before = n.matched_operations
        n.process_write(update(1, {"v": 5}, version=2), now=0.0)
        assert n.matched_operations == before

    def test_indexed_node_skips_non_candidates(self):
        n = node()
        queries = [Query({"v": i}) for i in range(20)]
        for query in queries:
            n.register_query(query, [], {}, now=0.0)
        n.process_write(insert(1, {"v": 3}), now=0.0)
        assert n.matched_operations == 1
        assert n.candidates_pruned == 19
        assert n.candidates_considered == 1
        assert n.pruning_ratio == pytest.approx(0.95)

    def test_naive_node_counts_zero_pruned(self):
        n = FilteringNode(NodeCoordinates(0, 0), use_index=False)
        for i in range(5):
            n.register_query(Query({"v": i}), [], {}, now=0.0)
        n.process_write(insert(1, {"v": 3}), now=0.0)
        assert n.matched_operations == 5
        assert n.candidates_pruned == 0
        assert n.pruning_ratio == 0.0


class TestReverseMapInvariant:
    """Previously-matching entities are always re-evaluated, so removes
    survive candidate pruning."""

    def test_remove_emitted_when_new_image_misses_every_bucket(self):
        n = node()
        n.register_query(Query({"v": 15}), [], {}, now=0.0)
        n.process_write(insert(1, {"v": 15}), now=0.0)
        # The new value hits no index entry at all (different field).
        events = n.process_write(update(1, {"w": 1}, version=2), now=0.0)
        assert [e.match_type for e in events] == [MatchType.REMOVE]

    def test_delete_consults_only_the_reverse_map(self):
        n = node()
        n.register_query(QUERY, [], {}, now=0.0)
        n.process_write(insert(1, {"v": 15}), now=0.0)
        considered_before = n.candidates_considered
        events = n.process_write(delete(1, version=2), now=0.0)
        assert [e.match_type for e in events] == [MatchType.REMOVE]
        # Exactly the one previously-matching query was considered.
        assert n.candidates_considered == considered_before + 1
        # A delete of an unknown key considers nothing.
        n.process_write(delete(99, version=1), now=0.0)
        assert n.candidates_considered == considered_before + 1

    def test_bootstrap_state_populates_reverse_map(self):
        n = node()
        n.register_query(Query({"v": 15}), [{"_id": 1, "v": 15}], {1: 1},
                         now=0.0)
        events = n.process_write(delete(1, version=2), now=0.0)
        assert [e.match_type for e in events] == [MatchType.REMOVE]

    def test_deactivation_clears_reverse_map(self):
        n = node()
        query = Query({"v": 15})
        n.register_query(query, [], {}, now=0.0)
        n.process_write(insert(1, {"v": 15}), now=0.0)
        n.deactivate_query(query.query_id)
        assert n.process_write(delete(1, version=2), now=0.0) == []


class TestSharedPredicateMemo:
    def test_shared_sub_predicates_hit_the_memo(self):
        # Scan every query (no index) so all three evaluations share
        # one memo: the second and third lookup of v >= 10 are hits.
        n = FilteringNode(NodeCoordinates(0, 0), use_index=False,
                          memoize=True)
        n.register_query(Query({"v": {"$gte": 10}}), [], {}, now=0.0)
        n.register_query(Query({"v": {"$gte": 10}, "tag": 1}), [], {},
                         now=0.0)
        n.register_query(Query({"v": {"$gte": 10}, "tag": 2}), [], {},
                         now=0.0)
        n.process_write(insert(1, {"v": 50, "tag": 1}), now=0.0)
        assert n.memo_hits == 2
        assert n.memo_hit_rate > 0

    def test_memo_composes_with_candidate_pruning(self):
        n = node()
        n.register_query(Query({"v": {"$gte": 10}}), [], {}, now=0.0)
        n.register_query(Query({"v": {"$gte": 10}, "tag": 1}), [], {},
                         now=0.0)
        n.register_query(Query({"v": {"$gte": 10}, "tag": 2}), [], {},
                         now=0.0)
        n.process_write(insert(1, {"v": 50, "tag": 1}), now=0.0)
        # The tag:2 query is pruned (its equality bucket never fires);
        # the two evaluated queries still share the v>=10 predicate.
        assert n.candidates_pruned == 1
        assert n.memo_hits == 1

    def test_memo_disabled(self):
        n = FilteringNode(NodeCoordinates(0, 0), memoize=False)
        n.register_query(Query({"v": {"$gte": 10}}), [], {}, now=0.0)
        n.register_query(Query({"v": {"$gte": 10}, "tag": 1}), [], {},
                         now=0.0)
        n.process_write(insert(1, {"v": 50, "tag": 1}), now=0.0)
        assert n.memo_hits == 0 and n.memo_misses == 0


class TestStats:
    def test_stats_snapshot(self):
        n = node()
        n.register_query(QUERY, [], {}, now=0.0)
        n.process_write(insert(1, {"v": 15}), now=0.0)
        stats = n.stats()
        assert stats["queries"] == 1
        assert stats["writes_processed"] == 1
        assert stats["matched_operations"] == 1
        assert stats["index"]["queries"] == 1
        assert 0.0 <= stats["pruning_ratio"] <= 1.0
        assert 0.0 <= stats["memo_hit_rate"] <= 1.0

    def test_naive_stats_have_no_index_section(self):
        n = FilteringNode(NodeCoordinates(0, 0), use_index=False)
        assert "index" not in n.stats()
