"""Matcher tests: path resolution, array fan-out, MongoDB semantics."""

import re

import pytest

from repro.query import matches
from repro.query.matcher import resolve_path


class TestPathResolution:
    def test_simple_path(self):
        values, exists = resolve_path({"a": 1}, "a")
        assert values == [1] and exists

    def test_missing_path(self):
        values, exists = resolve_path({"a": 1}, "b")
        assert values == [] and not exists

    def test_nested_path(self):
        values, exists = resolve_path({"a": {"b": {"c": 3}}}, "a.b.c")
        assert values == [3] and exists

    def test_array_index(self):
        values, exists = resolve_path({"a": [10, 20, 30]}, "a.1")
        assert values == [20] and exists

    def test_array_of_documents_fans_out(self):
        doc = {"items": [{"price": 1}, {"price": 2}, {"name": "x"}]}
        values, exists = resolve_path(doc, "items.price")
        assert sorted(values) == [1, 2] and exists

    def test_array_index_beyond_bounds(self):
        values, exists = resolve_path({"a": [1]}, "a.5")
        assert values == [] and not exists


class TestBasicMatching:
    def test_implicit_and(self):
        assert matches({"a": 1, "b": 2}, {"a": 1, "b": 2})
        assert not matches({"a": 1, "b": 3}, {"a": 1, "b": 2})

    def test_empty_filter_matches_everything(self):
        assert matches({"anything": True}, {})

    def test_nested_equality_via_dotted_path(self):
        assert matches({"a": {"b": 5}}, {"a.b": 5})

    def test_embedded_document_equality(self):
        assert matches({"a": {"b": 5}}, {"a": {"b": 5}})
        assert not matches({"a": {"b": 5, "c": 6}}, {"a": {"b": 5}})


class TestArraySemantics:
    def test_scalar_predicate_matches_array_element(self):
        assert matches({"tags": ["red", "blue"]}, {"tags": "red"})

    def test_range_matches_any_element(self):
        assert matches({"scores": [1, 50, 3]}, {"scores": {"$gt": 10}})
        assert not matches({"scores": [1, 3]}, {"scores": {"$gt": 10}})

    def test_whole_array_equality(self):
        assert matches({"tags": ["a", "b"]}, {"tags": ["a", "b"]})

    def test_array_containing_array_element(self):
        assert matches({"pairs": [[1, 2], [3, 4]]}, {"pairs": [1, 2]})

    def test_size_applies_to_whole_array_only(self):
        assert matches({"nested": [[1, 2]]}, {"nested": {"$size": 1}})


class TestNegationSemantics:
    def test_ne_matches_missing_field(self):
        assert matches({}, {"a": {"$ne": 5}})

    def test_ne_fails_when_any_element_equals(self):
        assert not matches({"a": [1, 5]}, {"a": {"$ne": 5}})
        assert matches({"a": [1, 2]}, {"a": {"$ne": 5}})

    def test_ne_null_does_not_match_missing(self):
        # {$ne: null} must reject documents without the field (they
        # "equal" null under MongoDB's missing-is-null rule).
        assert not matches({}, {"a": {"$ne": None}})
        assert matches({"a": 1}, {"a": {"$ne": None}})

    def test_nin(self):
        assert matches({"a": 3}, {"a": {"$nin": [1, 2]}})
        assert not matches({"a": 2}, {"a": {"$nin": [1, 2]}})
        assert matches({}, {"a": {"$nin": [1, 2]}})

    def test_not_with_operator(self):
        assert matches({"a": 1}, {"a": {"$not": {"$gt": 5}}})
        assert not matches({"a": 10}, {"a": {"$not": {"$gt": 5}}})

    def test_not_matches_missing_field(self):
        assert matches({}, {"a": {"$not": {"$gt": 5}}})

    def test_not_with_regex(self):
        assert matches({"a": "xyz"}, {"a": {"$not": re.compile("^a")}})
        assert not matches({"a": "abc"}, {"a": {"$not": re.compile("^a")}})


class TestNullSemantics:
    def test_null_equality_matches_missing_field(self):
        assert matches({}, {"a": None})
        assert matches({"a": None}, {"a": None})
        assert not matches({"a": 1}, {"a": None})

    def test_in_with_null_matches_missing(self):
        assert matches({}, {"a": {"$in": [None, 5]}})


class TestExists:
    def test_exists_true(self):
        assert matches({"a": 1}, {"a": {"$exists": True}})
        assert not matches({}, {"a": {"$exists": True}})

    def test_exists_false(self):
        assert matches({}, {"a": {"$exists": False}})
        assert not matches({"a": None}, {"a": {"$exists": False}})

    def test_exists_on_nested_path(self):
        assert matches({"a": {"b": 1}}, {"a.b": {"$exists": True}})


class TestLogicalOperators:
    def test_or(self):
        query = {"$or": [{"a": 1}, {"b": 2}]}
        assert matches({"a": 1}, query)
        assert matches({"b": 2}, query)
        assert not matches({"a": 2, "b": 3}, query)

    def test_and_explicit(self):
        query = {"$and": [{"a": {"$gt": 0}}, {"a": {"$lt": 10}}]}
        assert matches({"a": 5}, query)
        assert not matches({"a": 15}, query)

    def test_nor(self):
        query = {"$nor": [{"a": 1}, {"b": 2}]}
        assert matches({"a": 2}, query)
        assert not matches({"a": 1}, query)

    def test_nested_logical_combination(self):
        query = {
            "$or": [
                {"$and": [{"a": {"$gte": 1}}, {"a": {"$lt": 5}}]},
                {"b": {"$exists": True}},
            ]
        }
        assert matches({"a": 3}, query)
        assert matches({"a": 99, "b": 0}, query)
        assert not matches({"a": 99}, query)


class TestElemMatch:
    def test_value_form(self):
        query = {"scores": {"$elemMatch": {"$gte": 80, "$lt": 90}}}
        assert matches({"scores": [70, 85]}, query)
        # No single element is inside [80, 90) here:
        assert not matches({"scores": [70, 95]}, query)

    def test_document_form(self):
        query = {"items": {"$elemMatch": {"product": "x", "qty": {"$gt": 2}}}}
        assert matches({"items": [{"product": "x", "qty": 5}]}, query)
        assert not matches(
            {"items": [{"product": "x", "qty": 1}, {"product": "y", "qty": 9}]},
            query,
        )

    def test_non_array_value(self):
        assert not matches({"scores": 85},
                           {"scores": {"$elemMatch": {"$gte": 80}}})


class TestRegexQueries:
    def test_regex_operator(self):
        assert matches({"name": "InvaliDB"}, {"name": {"$regex": "^Inva"}})

    def test_regex_with_options(self):
        assert matches(
            {"name": "INVALIDB"},
            {"name": {"$regex": "^inva", "$options": "i"}},
        )

    def test_bare_pattern_value(self):
        assert matches({"name": "InvaliDB"}, {"name": re.compile("DB$")})

    def test_regex_over_array(self):
        assert matches({"tags": ["alpha", "beta"]}, {"tags": {"$regex": "^b"}})


class TestTextQueries:
    def test_single_term(self):
        assert matches({"title": "Real-Time Databases"},
                       {"$text": {"$search": "databases"}})

    def test_terms_are_or_combined(self):
        assert matches({"title": "stream processing"},
                       {"$text": {"$search": "nosql stream"}})

    def test_negated_term(self):
        assert not matches({"title": "stream processing"},
                           {"$text": {"$search": "stream -processing"}})

    def test_phrase(self):
        assert matches({"title": "push-based real-time queries"},
                       {"$text": {"$search": '"real-time queries"'}})
        assert not matches({"title": "queries in real time zones"},
                           {"$text": {"$search": '"real-time queries"'}})

    def test_searches_nested_strings(self):
        assert matches({"meta": {"abstract": "scalable matching"}},
                       {"$text": {"$search": "scalable"}})


class TestGeoQueries:
    def test_geo_within_box(self):
        assert matches({"loc": [10, 53]},
                       {"loc": {"$geoWithin": {"$box": [[9, 52], [11, 54]]}}})
        assert not matches({"loc": [12, 53]},
                           {"loc": {"$geoWithin": {"$box": [[9, 52], [11, 54]]}}})

    def test_near_sphere_with_max_distance(self):
        hamburg = [9.99, 53.55]
        berlin = [13.40, 52.52]
        query = {
            "loc": {
                "$nearSphere": {
                    "$geometry": {"type": "Point", "coordinates": hamburg},
                    "$maxDistance": 300_000,
                }
            }
        }
        assert matches({"loc": berlin}, query)  # ~255 km
        munich = [11.58, 48.14]
        assert not matches({"loc": munich}, query)  # ~600 km
