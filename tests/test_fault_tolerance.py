"""Failure-domain isolation and recovery tests (Section 5).

"By thus decoupling the real-time query workload from the main
application logic, even overburdening the real-time component cannot
take down the OLTP system: in the worst-case scenario, the InvaliDB
cluster is taken down and requests sent against the event layer remain
unanswered."
"""

import time

import pytest

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.event.broker import Broker

from tests.conftest import settle


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestIsolatedFailureDomain:
    def test_oltp_survives_cluster_outage(self, broker, cluster_factory,
                                          app_server_factory):
        """Pull-based reads and writes keep working with the real-time
        component down; its requests simply go unanswered."""
        cluster = cluster_factory(2, 2)
        app = app_server_factory()
        subscription = app.subscribe("items", {"v": {"$gte": 0}})
        app.insert("items", {"_id": 1, "v": 1})
        settle(cluster, broker)
        assert wait_for(lambda: subscription.change_count == 1)

        cluster.stop()  # the real-time component dies

        # OLTP path: fully functional.
        app.insert("items", {"_id": 2, "v": 2})
        app.update("items", 1, {"$set": {"v": 10}})
        assert len(app.find("items", {})) == 2
        assert app.find("items", {"v": 10})[0]["_id"] == 1
        # Push path: silent (no crash, no notification).
        time.sleep(0.3)
        broker.drain()
        assert subscription.change_count == 1

    def test_subscribing_against_dead_cluster_does_not_block(self, broker,
                                                             cluster_factory,
                                                             app_server_factory):
        cluster = cluster_factory(1, 1)
        cluster.stop()
        app = app_server_factory()
        subscription = app.subscribe("items", {"v": 1})
        # The initial result comes from the database, synchronously.
        assert subscription.initial is not None
        assert subscription.initial.documents == []


class TestRecovery:
    def test_resubscribe_all_after_cluster_restart(self, broker,
                                                   app_server_factory):
        """After a cluster replacement, re-subscription restores push
        delivery and the sorting stage emits catch-up deltas."""
        config = InvaliDBConfig(query_partitions=2, write_partitions=2)
        first = InvaliDBCluster(broker, config).start()
        app = app_server_factory(config=config)
        for index in range(6):
            app.insert("articles", {"_id": index, "year": 2000 + index})
        settle(first, broker)
        flat = app.subscribe("articles", {"year": {"$gte": 2003}})
        sorted_sub = app.subscribe("articles", {}, sort=[("year", -1)],
                                   limit=3)
        settle(first, broker)
        first.stop()

        # Writes during the outage are missed by the push path...
        app.insert("articles", {"_id": 100, "year": 2050})
        time.sleep(0.2)

        # ...until a fresh cluster comes up and the client re-subscribes.
        second = InvaliDBCluster(broker, config).start()
        try:
            assert app.client.resubscribe_all() == 2
            settle(second, broker)
            # The sorted subscription received the catch-up delta: the
            # 2050 article entered its window during re-registration.
            assert wait_for(
                lambda: any(
                    n.key == 100 for n in sorted_sub.notifications
                )
            )
            # New writes flow again for both subscriptions.
            app.insert("articles", {"_id": 101, "year": 2060})
            settle(second, broker)
            assert wait_for(
                lambda: any(n.key == 101 for n in flat.notifications)
            )
            assert wait_for(
                lambda: any(n.key == 101 for n in sorted_sub.notifications)
            )
            assert [d["_id"] for d in sorted_sub.result()] == [101, 100, 5]
        finally:
            second.stop()

    def test_heartbeat_detects_outage_then_resubscribe_recovers(
            self, broker, app_server_factory):
        config = InvaliDBConfig(query_partitions=1, write_partitions=1,
                                heartbeat_interval=0.05,
                                heartbeat_timeout=0.5)
        first = InvaliDBCluster(broker, config).start()
        app = app_server_factory("hb-app", config=config)
        subscription = app.subscribe("items", {"v": {"$gte": 0}})
        assert wait_for(lambda: app.client.last_heartbeat is not None)
        first.stop()
        # Heartbeats stop; supervision flags the outage.
        assert not app.client.check_heartbeat(
            now=app.client.last_heartbeat + 5.0
        )
        assert subscription.notifications[-1].is_error
