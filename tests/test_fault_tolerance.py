"""Failure-domain isolation and recovery tests (Section 5).

"By thus decoupling the real-time query workload from the main
application logic, even overburdening the real-time component cannot
take down the OLTP system: in the worst-case scenario, the InvaliDB
cluster is taken down and requests sent against the event layer remain
unanswered."

All scenarios run on the deterministic :class:`InlineExecutionModel`:
outages, restarts and heartbeat supervision are driven step by step
(``drain()``, ``publish_heartbeat()``) instead of being raced against
wall-clock timers.
"""

import pytest

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.event.broker import Broker
from repro.runtime.execution import ExecutionConfig, InlineExecutionModel


@pytest.fixture
def inline_broker():
    model = InlineExecutionModel(ExecutionConfig(mode="inline", seed=11))
    broker = Broker(execution=model)
    yield broker
    broker.close()
    model.shutdown()


class TestIsolatedFailureDomain:
    def test_oltp_survives_cluster_outage(self, inline_broker):
        """Pull-based reads and writes keep working with the real-time
        component down; its requests simply go unanswered."""
        broker = inline_broker
        config = InvaliDBConfig(query_partitions=2, write_partitions=2)
        cluster = InvaliDBCluster(broker, config).start()
        app = AppServer("app-1", broker, config=config)
        try:
            subscription = app.subscribe("items", {"v": {"$gte": 0}})
            app.insert("items", {"_id": 1, "v": 1})
            assert broker.drain()
            assert subscription.change_count == 1

            cluster.stop()  # the real-time component dies

            # OLTP path: fully functional.
            app.insert("items", {"_id": 2, "v": 2})
            app.update("items", 1, {"$set": {"v": 10}})
            assert len(app.find("items", {})) == 2
            assert app.find("items", {"v": 10})[0]["_id"] == 1
            # Push path: silent (no crash, no notification).
            assert broker.drain()
            assert subscription.change_count == 1
        finally:
            app.close()
            cluster.stop()

    def test_subscribing_against_dead_cluster_does_not_block(
            self, inline_broker):
        broker = inline_broker
        config = InvaliDBConfig(query_partitions=1, write_partitions=1)
        cluster = InvaliDBCluster(broker, config).start()
        cluster.stop()
        app = AppServer("app-1", broker, config=config)
        try:
            subscription = app.subscribe("items", {"v": 1})
            # The initial result comes from the database, synchronously.
            assert subscription.initial is not None
            assert subscription.initial.documents == []
        finally:
            app.close()


class TestRecovery:
    def test_resubscribe_all_after_cluster_restart(self, inline_broker):
        """After a cluster replacement, re-subscription restores push
        delivery and the sorting stage emits catch-up deltas."""
        broker = inline_broker
        config = InvaliDBConfig(query_partitions=2, write_partitions=2)
        first = InvaliDBCluster(broker, config).start()
        app = AppServer("app-1", broker, config=config)
        try:
            for index in range(6):
                app.insert("articles", {"_id": index, "year": 2000 + index})
            assert broker.drain()
            flat = app.subscribe("articles", {"year": {"$gte": 2003}})
            sorted_sub = app.subscribe("articles", {}, sort=[("year", -1)],
                                       limit=3)
            assert broker.drain()
            first.stop()

            # Writes during the outage are missed by the push path...
            app.insert("articles", {"_id": 100, "year": 2050})
            assert broker.drain()
            assert not any(n.key == 100 for n in sorted_sub.notifications)

            # ...until a fresh cluster comes up and the client
            # re-subscribes.
            second = InvaliDBCluster(broker, config).start()
            try:
                assert app.client.resubscribe_all() == 2
                assert broker.drain()
                # The sorted subscription received the catch-up delta:
                # the 2050 article entered its window during
                # re-registration.
                assert any(n.key == 100 for n in sorted_sub.notifications)
                # New writes flow again for both subscriptions.
                app.insert("articles", {"_id": 101, "year": 2060})
                assert broker.drain()
                assert any(n.key == 101 for n in flat.notifications)
                assert any(n.key == 101 for n in sorted_sub.notifications)
                assert [d["_id"] for d in sorted_sub.result()] == [
                    101, 100, 5
                ]
            finally:
                second.stop()
        finally:
            app.close()
            first.stop()

    def test_heartbeat_detects_outage_then_resubscribe_recovers(
            self, inline_broker):
        """Deterministic models run no heartbeat thread; the supervision
        path is driven explicitly via :meth:`publish_heartbeat`."""
        broker = inline_broker
        config = InvaliDBConfig(query_partitions=1, write_partitions=1,
                                heartbeat_interval=0.05,
                                heartbeat_timeout=0.5)
        first = InvaliDBCluster(broker, config).start()
        app = AppServer("hb-app", broker, config=config)
        try:
            subscription = app.subscribe("items", {"v": {"$gte": 0}})
            assert first.publish_heartbeat() >= 1
            assert app.client.last_heartbeat is not None
            first.stop()
            # Heartbeats stop; supervision flags the outage.
            assert not app.client.check_heartbeat(
                now=app.client.last_heartbeat + 5.0
            )
            assert subscription.notifications[-1].is_error
        finally:
            app.close()
            first.stop()
