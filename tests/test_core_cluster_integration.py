"""Integration tests: app server <-> event layer <-> InvaliDB cluster."""

import time

import pytest

from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.types import MatchType

from tests.conftest import settle


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestUnsortedQueries:
    def test_add_change_remove_lifecycle(self, broker, cluster_factory,
                                          app_server_factory):
        cluster = cluster_factory(2, 2)
        app = app_server_factory()
        subscription = app.subscribe("items", {"v": {"$gte": 10}})
        assert subscription.initial.documents == []

        app.insert("items", {"_id": 1, "v": 15})
        app.insert("items", {"_id": 2, "v": 5})
        settle(cluster, broker)
        assert [n.match_type for n in subscription.notifications] == [
            MatchType.ADD
        ]

        app.update("items", 1, {"$set": {"v": 20}})
        settle(cluster, broker)
        assert subscription.notifications[-1].match_type is MatchType.CHANGE

        app.update("items", 1, {"$set": {"v": 1}})
        settle(cluster, broker)
        assert subscription.notifications[-1].match_type is MatchType.REMOVE
        assert subscription.result() == []

    def test_initial_result_from_existing_data(self, broker, cluster_factory,
                                               app_server_factory):
        cluster = cluster_factory(2, 2)
        app = app_server_factory()
        for index in range(10):
            app.insert("items", {"_id": index, "v": index})
        settle(cluster, broker)
        subscription = app.subscribe("items", {"v": {"$gte": 7}})
        assert {d["_id"] for d in subscription.initial.documents} == {7, 8, 9}

    def test_eventual_consistency_with_database(self, broker, cluster_factory,
                                                app_server_factory):
        """After quiescence the maintained result equals a fresh
        pull-based query (the paper's eventual consistency claim)."""
        cluster = cluster_factory(3, 2)
        app = app_server_factory()
        filter_doc = {"v": {"$gte": 50}, "tag": {"$ne": "skip"}}
        subscription = app.subscribe("items", filter_doc)
        import random

        rng = random.Random(7)
        live = set()
        for step in range(200):
            action = rng.random()
            if action < 0.5 or not live:
                key = step
                app.insert("items", {"_id": key, "v": rng.randrange(100),
                                     "tag": rng.choice(["keep", "skip"])})
                live.add(key)
            elif action < 0.8:
                key = rng.choice(sorted(live))
                app.update("items", key,
                           {"$set": {"v": rng.randrange(100)}})
            else:
                key = rng.choice(sorted(live))
                app.delete("items", key)
                live.discard(key)
        settle(cluster, broker, rounds=5)
        expected = {d["_id"] for d in app.find("items", filter_doc)}
        assert wait_for(
            lambda: {d["_id"] for d in subscription.result()} == expected
        ), (
            f"maintained={sorted(d['_id'] for d in subscription.result())} "
            f"expected={sorted(expected)}"
        )


class TestSortedQueries:
    def test_sorted_window_with_offset(self, broker, cluster_factory,
                                       app_server_factory):
        cluster = cluster_factory(2, 2)
        app = app_server_factory()
        rows = [(5, 2018), (8, 2018), (3, 2017), (4, 2017), (7, 2016),
                (9, 2016)]
        for key, year in rows:
            app.insert("articles", {"_id": key, "year": year})
        settle(cluster, broker)
        subscription = app.subscribe(
            "articles", {}, sort=[("year", -1)], limit=3, offset=2
        )
        assert [d["_id"] for d in subscription.initial.documents] == [3, 4, 7]

        # Figure 3: removing an offset item shifts the window.
        app.delete("articles", 8)
        settle(cluster, broker)
        assert wait_for(
            lambda: [d["_id"] for d in subscription.result()] == [4, 7, 9]
        )

    def test_sorted_query_emits_change_index(self, broker, cluster_factory,
                                             app_server_factory):
        cluster = cluster_factory(2, 2)
        app = app_server_factory()
        for key, year in [(1, 2016), (2, 2017), (3, 2018)]:
            app.insert("articles", {"_id": key, "year": year})
        settle(cluster, broker)
        subscription = app.subscribe("articles", {}, sort=[("year", -1)],
                                     limit=3)
        app.update("articles", 1, {"$set": {"year": 2030}})
        settle(cluster, broker)
        assert wait_for(
            lambda: any(
                n.match_type is MatchType.CHANGE_INDEX
                for n in subscription.notifications
            )
        )
        assert [d["_id"] for d in subscription.result()] == [1, 3, 2]

    def test_maintenance_error_triggers_renewal(self, broker, cluster_factory,
                                                app_server_factory):
        """Slack exhaustion: the cluster requests a renewal, the client
        re-executes and re-subscribes, and the result self-heals."""
        cluster = cluster_factory(1, 1, default_slack=1,
                                  renewal_min_interval=0.0)
        config = InvaliDBConfig(default_slack=1, renewal_min_interval=0.0)
        app = app_server_factory("renewal-app", config=config)
        for index in range(10):
            app.insert("articles", {"_id": index, "year": 2000 + index})
        settle(cluster, broker)
        subscription = app.subscribe("articles", {}, sort=[("year", -1)],
                                     limit=3)
        assert [d["_id"] for d in subscription.initial.documents] == [9, 8, 7]
        # Delete enough result members to exhaust the slack of 1.
        app.delete("articles", 9)
        app.delete("articles", 8)
        app.delete("articles", 7)
        settle(cluster, broker, rounds=6)
        assert wait_for(
            lambda: [d["_id"] for d in subscription.result()] == [6, 5, 4],
            timeout=10.0,
        ), [d["_id"] for d in subscription.result()]
        assert any(n.is_error for n in subscription.notifications)


class TestMultiTenancy:
    def test_two_app_servers_share_one_query(self, broker, cluster_factory,
                                             app_server_factory):
        """InvaliDB is multi-tenant: the same query subscribed from two
        app servers is matched once and fanned out to both."""
        from repro.store.database import Database

        cluster = cluster_factory(2, 2)
        shared_db = Database()
        app_a = app_server_factory("app-a", database=shared_db)
        app_b = app_server_factory("app-b", database=shared_db)
        sub_a = app_a.subscribe("items", {"v": {"$gte": 10}})
        settle(cluster, broker)
        sub_b = app_b.subscribe("items", {"v": {"$gte": 10}})
        settle(cluster, broker)
        assert len(cluster.active_query_ids()) == 1

        app_a.insert("items", {"_id": 1, "v": 50})
        settle(cluster, broker)
        assert wait_for(lambda: sub_a.change_count >= 1)
        assert wait_for(lambda: sub_b.change_count >= 1)

    def test_cancel_keeps_query_for_other_server(self, broker,
                                                 cluster_factory,
                                                 app_server_factory):
        cluster = cluster_factory(1, 1)
        app_a = app_server_factory("app-a")
        app_b = app_server_factory("app-b")
        sub_a = app_a.subscribe("items", {"v": 1})
        sub_b = app_b.subscribe("items", {"v": 1})
        settle(cluster, broker)
        app_a.unsubscribe(sub_a)
        settle(cluster, broker)
        assert len(cluster.active_query_ids()) == 1
        app_b.unsubscribe(sub_b)
        settle(cluster, broker)
        assert cluster.active_query_ids() == []


class TestSubscriptionLifecycle:
    def test_unsubscribe_stops_notifications(self, broker, cluster_factory,
                                             app_server_factory):
        cluster = cluster_factory(2, 2)
        app = app_server_factory()
        subscription = app.subscribe("items", {"v": {"$gte": 0}})
        app.insert("items", {"_id": 1, "v": 1})
        settle(cluster, broker)
        count = subscription.change_count
        app.unsubscribe(subscription)
        settle(cluster, broker)
        app.insert("items", {"_id": 2, "v": 2})
        settle(cluster, broker)
        assert subscription.change_count == count

    def test_two_subscriptions_same_query_same_server(self, broker,
                                                      cluster_factory,
                                                      app_server_factory):
        cluster = cluster_factory(2, 2)
        app = app_server_factory()
        sub_1 = app.subscribe("items", {"v": {"$gte": 0}})
        sub_2 = app.subscribe("items", {"v": {"$gte": 0}})
        assert sub_1.subscription_id != sub_2.subscription_id
        app.insert("items", {"_id": 1, "v": 1})
        settle(cluster, broker)
        assert wait_for(lambda: sub_1.change_count == 1)
        assert wait_for(lambda: sub_2.change_count == 1)
        # Notifications are tagged per subscription (footnote 2).
        assert sub_1.notifications[0].subscription_id == sub_1.subscription_id
        assert sub_2.notifications[0].subscription_id == sub_2.subscription_id

    def test_ttl_expiry_deactivates_query(self, broker, cluster_factory,
                                          app_server_factory):
        cluster = cluster_factory(1, 1, subscription_ttl=0.2,
                                  heartbeat_interval=0.05,
                                  heartbeat_timeout=10.0)
        app = app_server_factory()
        app.subscribe("items", {"v": 1})
        settle(cluster, broker)
        assert len(cluster.active_query_ids()) == 1
        # No TTL extensions: the reaper must deactivate the query.
        assert wait_for(lambda: cluster.active_query_ids() == [], timeout=5.0)

    def test_ttl_extension_keeps_query_alive(self, broker, cluster_factory,
                                             app_server_factory):
        cluster = cluster_factory(1, 1, subscription_ttl=0.4,
                                  heartbeat_interval=0.05,
                                  heartbeat_timeout=10.0)
        app = app_server_factory()
        app.subscribe("items", {"v": 1})
        settle(cluster, broker)
        for _ in range(6):
            time.sleep(0.1)
            app.client.extend_ttls()
        assert len(cluster.active_query_ids()) == 1
