"""Cross-batch notification coalescing (the time-window stager).

In-batch coalescing cannot elide redundancy that spans dispatch
batches; ``coalescing_window_seconds`` stages unsorted-query changes
and collapses them per (query, key) before fan-out.  Under the inline
execution model the window is virtual time — ``drain()`` fires the
flush — so every test here is deterministic.
"""

import pytest

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.event.broker import Broker
from repro.runtime.execution import ExecutionConfig, InlineExecutionModel
from repro.types import MatchType


@pytest.fixture
def inline_stack():
    """Shared inline substrate: broker + cluster + app, window enabled."""
    built = {}

    def build(window=0.5, **config_kwargs):
        model = InlineExecutionModel(ExecutionConfig(mode="inline", seed=3))
        broker = Broker(execution=model)
        config = InvaliDBConfig(
            query_partitions=1, write_partitions=1,
            coalescing_window_seconds=window,
            **config_kwargs,
        )
        cluster = InvaliDBCluster(broker, config).start()
        app = AppServer("stager-app", broker, config=config)
        built.update(model=model, broker=broker, cluster=cluster, app=app)
        return broker, cluster, app

    yield build
    if built:
        built["app"].close()
        built["cluster"].stop()
        built["broker"].close()
        built["model"].shutdown()


class TestStagingWindow:
    def test_rapid_rewrites_collapse_to_one_add(self, inline_stack):
        broker, cluster, app = inline_stack()
        sub = app.subscribe("items", {"v": {"$gte": 0}})
        app.insert("items", {"_id": 1, "v": 1})
        app.update("items", 1, {"$set": {"v": 2}})
        app.update("items", 1, {"$set": {"v": 3}})
        # All three changes landed inside the window: nothing delivered
        # until the (virtual-time) flush fires.
        assert sub.notifications == []
        assert broker.drain()
        assert [n.match_type for n in sub.notifications] == [MatchType.ADD]
        assert sub.notifications[0].document["v"] == 3
        assert cluster.notifications_coalesced >= 2

    def test_add_then_remove_nets_to_nothing(self, inline_stack):
        broker, cluster, app = inline_stack()
        sub = app.subscribe("items", {"v": {"$gte": 0}})
        app.insert("items", {"_id": 1, "v": 1})
        app.delete("items", 1)
        assert broker.drain()
        # The client never knew the key: the pair is elided entirely.
        assert sub.notifications == []
        assert sub.result() == []

    def test_known_key_update_flushes_as_change(self, inline_stack):
        broker, cluster, app = inline_stack()
        sub = app.subscribe("items", {"v": {"$gte": 0}})
        app.insert("items", {"_id": 1, "v": 1})
        assert broker.drain()  # the ADD flushes; key now known
        app.update("items", 1, {"$set": {"v": 5}})
        app.update("items", 1, {"$set": {"v": 9}})
        assert broker.drain()
        types = [n.match_type for n in sub.notifications]
        assert types == [MatchType.ADD, MatchType.CHANGE]
        assert sub.notifications[-1].document["v"] == 9

    def test_sorted_changes_bypass_staging(self, inline_stack):
        broker, cluster, app = inline_stack()
        sub = app.subscribe("items", {"v": {"$gte": 0}},
                            sort=[("v", 1)], limit=5)
        app.insert("items", {"_id": 1, "v": 1})
        # Positional changes must reach the client unmerged: delivered
        # synchronously, no flush needed.
        assert len(sub.notifications) == 1
        assert sub.notifications[0].index == 0

    def test_stop_flushes_pending_changes(self, inline_stack):
        broker, cluster, app = inline_stack()
        sub = app.subscribe("items", {"v": {"$gte": 0}})
        app.insert("items", {"_id": 7, "v": 7})
        assert sub.notifications == []
        cluster.stop()
        assert [n.match_type for n in sub.notifications] == [MatchType.ADD]

    def test_snapshot_reports_stager_stats(self, inline_stack):
        broker, cluster, app = inline_stack()
        app.subscribe("items", {"v": {"$gte": 0}})
        app.insert("items", {"_id": 1, "v": 1})
        snap = cluster.snapshot()
        assert snap["coalescing"]["pending"] == 1
        assert broker.drain()
        snap = cluster.snapshot()
        assert snap["coalescing"]["pending"] == 0
        assert snap["coalescing"]["flushes"] >= 1
        assert snap["coalescing"]["window_seconds"] == 0.5

    def test_zero_window_disables_staging(self, inline_stack):
        broker, cluster, app = inline_stack(window=0.0)
        sub = app.subscribe("items", {"v": {"$gte": 0}})
        app.insert("items", {"_id": 1, "v": 1})
        assert cluster.stager is None
        assert len(sub.notifications) == 1
        assert "coalescing" not in cluster.snapshot()

    def test_negative_window_rejected(self):
        from repro.errors import ClusterConfigError

        with pytest.raises(ClusterConfigError):
            InvaliDBConfig(coalescing_window_seconds=-0.1)
