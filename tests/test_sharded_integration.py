"""InvaliDB on top of a *sharded* collection — the production setup.

The paper's prototype runs "on top of the NoSQL database MongoDB with
sharded collections" (Section 5.4).  These tests put the app server on
a :class:`~repro.store.sharding.ShardedCollection` and verify the
push-based path works identically: write-stream re-partitioning is
independent of the storage sharding.
"""

import time

import pytest

from repro.core.client import InvaliDBClient
from repro.core.config import InvaliDBConfig
from repro.store.sharding import ShardedCollection

from tests.conftest import settle


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


@pytest.fixture
def sharded_stack(broker, cluster_factory):
    cluster = cluster_factory(2, 2)
    sharded = ShardedCollection("items", shards=4)
    client = InvaliDBClient("sharded-app", broker, sharded)
    client.attach(sharded)
    yield cluster, sharded, client
    client.close()


class TestShardedBackend:
    def test_initial_result_spans_shards(self, broker, sharded_stack):
        cluster, sharded, client = sharded_stack
        for index in range(40):
            sharded.insert({"_id": index, "v": index})
        settle(cluster, broker)
        subscription = client.subscribe({"v": {"$gte": 35}},
                                        collection="items")
        assert {d["_id"] for d in subscription.initial.documents} == {
            35, 36, 37, 38, 39,
        }

    def test_writes_from_any_shard_notify(self, broker, sharded_stack):
        cluster, sharded, client = sharded_stack
        subscription = client.subscribe({"v": {"$gte": 100}},
                                        collection="items")
        # Keys chosen so several storage shards are hit.
        for key in ("alpha", "beta", "gamma", "delta", 42, 77):
            sharded.insert({"_id": key, "v": 150})
        settle(cluster, broker)
        assert wait_for(lambda: subscription.change_count == 6)
        assert {n.key for n in subscription.notifications} == {
            "alpha", "beta", "gamma", "delta", 42, 77,
        }

    def test_sorted_query_over_sharded_collection(self, broker,
                                                  sharded_stack):
        cluster, sharded, client = sharded_stack
        for index in range(20):
            sharded.insert({"_id": index, "score": index * 3})
        settle(cluster, broker)
        subscription = client.subscribe(
            {}, collection="items", sort=[("score", -1)], limit=3
        )
        assert [d["_id"] for d in subscription.initial.documents] == [
            19, 18, 17,
        ]
        sharded.insert({"_id": 100, "score": 1000})
        settle(cluster, broker)
        assert wait_for(
            lambda: [d["_id"] for d in subscription.result()] == [100, 19, 18]
        )

    def test_convergence_under_shard_spanning_churn(self, broker,
                                                    sharded_stack):
        import random

        cluster, sharded, client = sharded_stack
        subscription = client.subscribe({"v": {"$gte": 50}},
                                        collection="items")
        rng = random.Random(13)
        live = set()
        for step in range(150):
            roll = rng.random()
            if roll < 0.5 or not live:
                sharded.insert({"_id": step, "v": rng.randrange(100)})
                live.add(step)
            elif roll < 0.8:
                key = rng.choice(sorted(live))
                sharded.update(key, {"$set": {"v": rng.randrange(100)}})
            else:
                key = rng.choice(sorted(live))
                sharded.delete(key)
                live.discard(key)
        settle(cluster, broker, rounds=5)
        expected = {d["_id"] for d in sharded.find({"v": {"$gte": 50}})}
        assert wait_for(
            lambda: {d["_id"] for d in subscription.result()} == expected
        )
