"""Aggregation-stage tests (the Section 8.1 extension)."""

import pytest

from repro.core.aggregation import AggregateSpec, AggregationNode
from repro.core.filtering import FilteringNode, MatchEvent
from repro.core.partitioning import NodeCoordinates
from repro.core.stages import ProcessingStage, pipe
from repro.errors import QueryParseError
from repro.query.engine import Query
from repro.types import AfterImage, MatchType, WriteKind

QUERY = Query({"category": "bikes"})

SPECS = (
    AggregateSpec("count"),
    AggregateSpec("sum", "price"),
    AggregateSpec("avg", "price"),
    AggregateSpec("min", "price"),
    AggregateSpec("max", "price"),
)


def event(match_type, key, document=None, version=1):
    return MatchEvent(QUERY.query_id, match_type, key, document, version,
                      0.0, False)


def bike(key, price):
    return {"_id": key, "category": "bikes", "price": price}


@pytest.fixture
def node():
    aggregation = AggregationNode()
    aggregation.register_query(QUERY, [], {}, aggregates=SPECS)
    return aggregation


class TestSpecs:
    def test_spec_validation(self):
        with pytest.raises(QueryParseError):
            AggregateSpec("median", "price")
        with pytest.raises(QueryParseError):
            AggregateSpec("sum")  # needs a field
        assert AggregateSpec("count").name == "count"
        assert AggregateSpec("avg", "price").name == "avg(price)"

    def test_registration_requires_aggregates(self):
        with pytest.raises(QueryParseError):
            AggregationNode().register_query(QUERY, [], {})

    def test_is_a_processing_stage(self, node):
        assert isinstance(node, ProcessingStage)


class TestIncrementalAggregates:
    def test_adds_update_all_aggregates(self, node):
        node.handle_event(event(MatchType.ADD, 1, bike(1, 100)))
        changes = node.handle_event(event(MatchType.ADD, 2, bike(2, 300)))
        snapshot = changes[0].document
        assert snapshot["count"] == 2
        assert snapshot["sum(price)"] == 400
        assert snapshot["avg(price)"] == 200
        assert snapshot["min(price)"] == 100
        assert snapshot["max(price)"] == 300

    def test_remove_updates_extrema(self, node):
        for key, price in ((1, 100), (2, 300), (3, 200)):
            node.handle_event(event(MatchType.ADD, key, bike(key, price)))
        changes = node.handle_event(event(MatchType.REMOVE, 2, version=2))
        snapshot = changes[0].document
        assert snapshot["count"] == 2
        assert snapshot["max(price)"] == 200
        assert snapshot["sum(price)"] == 300

    def test_change_replaces_contribution(self, node):
        node.handle_event(event(MatchType.ADD, 1, bike(1, 100)))
        changes = node.handle_event(
            event(MatchType.CHANGE, 1, bike(1, 150), version=2)
        )
        snapshot = changes[0].document
        assert snapshot["count"] == 1
        assert snapshot["sum(price)"] == 150
        assert snapshot["min(price)"] == 150

    def test_no_notification_when_aggregate_unchanged(self, node):
        node.handle_event(event(MatchType.ADD, 1, bike(1, 100)))
        # A change that does not move any aggregate (same price).
        changes = node.handle_event(
            event(MatchType.CHANGE, 1,
                  {**bike(1, 100), "color": "red"}, version=2)
        )
        assert changes == []

    def test_empty_result_aggregates(self, node):
        snapshot = node.aggregate_of(QUERY.query_id)
        assert snapshot["count"] == 0
        assert snapshot["sum(price)"] == 0
        assert snapshot["avg(price)"] is None
        assert snapshot["min(price)"] is None

    def test_non_numeric_price_skipped_by_sum_included_by_minmax(self, node):
        node.handle_event(event(MatchType.ADD, 1, bike(1, 100)))
        node.handle_event(
            event(MatchType.ADD, 2,
                  {"_id": 2, "category": "bikes", "price": "call us"})
        )
        snapshot = node.aggregate_of(QUERY.query_id)
        assert snapshot["sum(price)"] == 100
        assert snapshot["avg(price)"] == 100  # only numeric contributions
        assert snapshot["max(price)"] == "call us"  # strings sort above numbers

    def test_remove_unknown_member_is_noop(self, node):
        assert node.handle_event(event(MatchType.REMOVE, 99, version=1)) == []

    def test_bootstrap_members_counted(self):
        aggregation = AggregationNode()
        aggregation.register_query(
            QUERY, [bike(1, 10), bike(2, 20)], {}, aggregates=SPECS
        )
        snapshot = aggregation.aggregate_of(QUERY.query_id)
        assert snapshot["count"] == 2 and snapshot["sum(price)"] == 30

    def test_re_registration_emits_delta_change(self):
        aggregation = AggregationNode()
        aggregation.register_query(QUERY, [bike(1, 10)], {}, aggregates=SPECS)
        changes = aggregation.register_query(
            QUERY, [bike(1, 10), bike(2, 20)], {}, aggregates=SPECS
        )
        assert len(changes) == 1
        assert changes[0].document["count"] == 2

    def test_deactivation(self, node):
        assert node.deactivate_query(QUERY.query_id)
        assert node.handle_event(event(MatchType.ADD, 1, bike(1, 1))) == []


class TestPipelineComposition:
    def test_filtering_into_aggregation(self):
        """The SEDA composition: filtering stage output drives the
        aggregation stage, end to end."""
        filtering = FilteringNode(NodeCoordinates(0, 0))
        aggregation = AggregationNode()
        filtering.register_query(QUERY, [], {}, now=0.0)
        aggregation.register_query(QUERY, [], {}, aggregates=SPECS)

        def write(key, doc, version, kind=WriteKind.INSERT):
            after = AfterImage(key, version, kind, doc)
            return pipe(aggregation, filtering.process_write(after, now=0.0))

        write(1, bike(1, 100), 1)
        write(2, bike(2, 200), 1)
        write(3, {"_id": 3, "category": "boards", "price": 999}, 1)  # no match
        changes = write(1, None, 2, WriteKind.DELETE)
        snapshot = changes[0].document
        assert snapshot["count"] == 1
        assert snapshot["sum(price)"] == 200

    def test_aggregate_equals_recomputation_under_property_churn(self):
        import random

        rng = random.Random(3)
        filtering = FilteringNode(NodeCoordinates(0, 0))
        aggregation = AggregationNode()
        filtering.register_query(QUERY, [], {}, now=0.0)
        aggregation.register_query(QUERY, [], {}, aggregates=SPECS)
        state = {}
        versions = {}
        for step in range(300):
            key = rng.randrange(20)
            versions[key] = versions.get(key, 0) + 1
            roll = rng.random()
            if roll < 0.25 and key in state:
                del state[key]
                after = AfterImage(key, versions[key], WriteKind.DELETE, None)
            else:
                category = rng.choice(["bikes", "boards"])
                doc = {"_id": key, "category": category,
                       "price": rng.randrange(1000)}
                state[key] = doc
                after = AfterImage(key, versions[key], WriteKind.UPDATE, doc)
            pipe(aggregation, filtering.process_write(after, now=0.0))
        snapshot = aggregation.aggregate_of(QUERY.query_id)
        matching = [doc for doc in state.values()
                    if doc["category"] == "bikes"]
        assert snapshot["count"] == len(matching)
        assert snapshot["sum(price)"] == sum(d["price"] for d in matching)
        if matching:
            assert snapshot["min(price)"] == min(d["price"] for d in matching)
            assert snapshot["max(price)"] == max(d["price"] for d in matching)
        else:
            assert snapshot["min(price)"] is None
