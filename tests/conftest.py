"""Shared fixtures for the InvaliDB reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.cluster import InvaliDBCluster
from repro.core.config import InvaliDBConfig
from repro.core.server import AppServer
from repro.event.broker import Broker
from repro.store.collection import Collection


class FakeClock:
    """A controllable time source for deterministic tests."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def collection(clock: FakeClock) -> Collection:
    return Collection("test", clock=clock)


@pytest.fixture
def broker():
    broker = Broker()
    yield broker
    broker.close()


@pytest.fixture
def cluster_factory(broker):
    """Build started clusters that are stopped on teardown."""
    clusters = []

    def build(query_partitions: int = 2, write_partitions: int = 2,
              **config_kwargs) -> InvaliDBCluster:
        config = InvaliDBConfig(
            query_partitions=query_partitions,
            write_partitions=write_partitions,
            **config_kwargs,
        )
        cluster = InvaliDBCluster(broker, config).start()
        clusters.append(cluster)
        return cluster

    yield build
    for cluster in clusters:
        cluster.stop()


@pytest.fixture
def app_server_factory(broker):
    """Build app servers that are closed on teardown."""
    servers = []

    def build(server_id: str = "app-1", **kwargs) -> AppServer:
        server = AppServer(server_id, broker, **kwargs)
        servers.append(server)
        return server

    yield build
    for server in servers:
        server.close()


def settle(cluster: InvaliDBCluster, broker: Broker, rounds: int = 3,
           timeout: float = 5.0) -> None:
    """Wait until messages stopped flowing through broker and topology.

    One drain is not enough because deliveries can enqueue follow-up
    messages (broker -> ingestion -> matching -> broker); alternating a
    few rounds reaches quiescence for test-sized workloads.
    """
    for _ in range(rounds):
        broker.drain(timeout)
        cluster.drain(timeout)
