"""Sharded collection and database namespace tests."""

import pytest

from repro.errors import CollectionNotFoundError
from repro.store.database import Database
from repro.store.documents import deep_copy, get_path, set_path
from repro.store.sharding import ShardedCollection
from repro.errors import InvalidDocumentError


class TestDocumentsHelpers:
    def test_get_path(self):
        doc = {"a": {"b": [10, {"c": 1}]}}
        assert get_path(doc, "a.b.0") == 10
        assert get_path(doc, "a.b.1.c") == 1
        assert get_path(doc, "a.x", "fallback") == "fallback"

    def test_set_path_creates_intermediates(self):
        doc = {}
        set_path(doc, "a.b.c", 1)
        assert doc == {"a": {"b": {"c": 1}}}

    def test_deep_copy_rejects_foreign_types(self):
        with pytest.raises(InvalidDocumentError):
            deep_copy({"a": object()})

    def test_deep_copy_is_deep(self):
        original = {"a": [{"b": 1}]}
        clone = deep_copy(original)
        clone["a"][0]["b"] = 2
        assert original["a"][0]["b"] == 1


class TestShardedCollection:
    @pytest.fixture
    def sharded(self):
        collection = ShardedCollection("test", shards=4)
        for i in range(50):
            collection.insert({"_id": i, "v": i % 10})
        return collection

    def test_routing_is_stable(self, sharded):
        assert sharded.shard_for(7) is sharded.shard_for(7)

    def test_all_shards_receive_documents(self, sharded):
        sizes = [len(shard) for shard in sharded.shards]
        assert sum(sizes) == 50
        assert all(size > 0 for size in sizes)

    def test_point_reads(self, sharded):
        assert sharded.get(13)["v"] == 3
        assert 13 in sharded

    def test_scatter_gather_find(self, sharded):
        result = sharded.find({"v": {"$gte": 8}})
        assert {d["_id"] for d in result} == {
            i for i in range(50) if i % 10 >= 8
        }

    def test_global_sort_merge(self, sharded):
        result = sharded.find({}, sort=[("v", 1), ("_id", 1)], limit=5)
        assert [d["_id"] for d in result] == [0, 10, 20, 30, 40]

    def test_skip_applies_after_merge(self, sharded):
        everything = sharded.find({}, sort=[("_id", 1)])
        sliced = sharded.find({}, sort=[("_id", 1)], skip=10, limit=5)
        assert sliced == everything[10:15]

    def test_update_delete_route_to_owner(self, sharded):
        sharded.update(7, {"$set": {"v": 99}})
        assert sharded.get(7)["v"] == 99
        sharded.delete(7)
        assert sharded.get(7) is None
        assert sharded.count() == 49

    def test_write_listener_spans_shards(self, sharded):
        seen = []
        unsubscribe = sharded.on_write(seen.append)
        sharded.insert({"_id": 1000, "v": 1})
        sharded.insert({"_id": 1001, "v": 1})
        assert len(seen) == 2
        unsubscribe()

    def test_versions_tracked_per_shard(self, sharded):
        sharded.update(3, {"$set": {"v": 1}})
        assert sharded.version_of(3) == 2

    def test_single_shard_allowed(self):
        assert len(ShardedCollection(shards=1).shards) == 1
        with pytest.raises(ValueError):
            ShardedCollection(shards=0)


class TestDatabase:
    def test_lazy_collection_creation(self):
        db = Database()
        articles = db.collection("articles")
        assert db.collection("articles") is articles
        assert "articles" in db

    def test_create_false_raises(self):
        db = Database()
        with pytest.raises(CollectionNotFoundError):
            db.collection("missing", create=False)

    def test_shared_oplog_across_collections(self):
        db = Database()
        db["a"].insert({"_id": 1})
        db["b"].insert({"_id": 2})
        entries = db.oplog.read_from(1)
        assert [e.collection for e in entries] == ["a", "b"]

    def test_drop_collection(self):
        db = Database()
        db["temp"].insert({"_id": 1})
        db.drop_collection("temp")
        assert "temp" not in db
        assert db["temp"].count() == 0

    def test_collection_names_sorted(self):
        db = Database()
        db["z"], db["a"]
        assert db.collection_names() == ["a", "z"]
