"""Live views over the full threaded stack (aggregation + join)."""

import time

import pytest

from repro.core.aggregation import AggregateSpec
from repro.core.views import LiveAggregateView, LiveJoinView

from tests.conftest import settle


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


SPECS = (AggregateSpec("count"), AggregateSpec("sum", "total"),
         AggregateSpec("max", "total"))


class TestLiveAggregateView:
    def test_view_tracks_writes(self, broker, cluster_factory,
                                app_server_factory):
        cluster = cluster_factory(2, 2)
        app = app_server_factory()
        view = LiveAggregateView(app, "orders", {"status": "open"}, SPECS)
        assert view.value()["count"] == 0

        app.insert("orders", {"_id": 1, "status": "open", "total": 100})
        app.insert("orders", {"_id": 2, "status": "open", "total": 250})
        app.insert("orders", {"_id": 3, "status": "closed", "total": 999})
        settle(cluster, broker)
        assert wait_for(lambda: view.value()["count"] == 2)
        snapshot = view.value()
        assert snapshot["sum(total)"] == 350
        assert snapshot["max(total)"] == 250

        app.update("orders", 2, {"$set": {"status": "closed"}})
        settle(cluster, broker)
        assert wait_for(lambda: view.value()["count"] == 1)
        assert view.value()["sum(total)"] == 100
        view.close()

    def test_view_bootstraps_from_existing_data(self, broker,
                                                cluster_factory,
                                                app_server_factory):
        cluster = cluster_factory(2, 2)
        app = app_server_factory()
        for index in range(5):
            app.insert("orders", {"_id": index, "status": "open",
                                  "total": 10 * (index + 1)})
        settle(cluster, broker)
        view = LiveAggregateView(app, "orders", {"status": "open"}, SPECS)
        assert view.value()["count"] == 5
        assert view.value()["sum(total)"] == 150
        view.close()

    def test_callback_fires_on_change(self, broker, cluster_factory,
                                      app_server_factory):
        cluster = cluster_factory(1, 1)
        app = app_server_factory()
        snapshots = []
        view = LiveAggregateView(app, "orders", {"status": "open"}, SPECS,
                                 on_change=snapshots.append)
        app.insert("orders", {"_id": 1, "status": "open", "total": 5})
        settle(cluster, broker)
        assert wait_for(lambda: len(snapshots) >= 1)
        assert snapshots[-1]["count"] == 1
        view.close()


class TestLiveJoinView:
    def test_join_view_end_to_end(self, broker, cluster_factory,
                                  app_server_factory):
        cluster = cluster_factory(2, 2)
        app = app_server_factory()
        app.insert("customers", {"_id": "c1", "active": True, "name": "Ada"})
        settle(cluster, broker)
        view = LiveJoinView(
            app,
            left=("orders", {"status": "open"}, "customer_id"),
            right=("customers", {"active": True}, "_id"),
        )
        assert view.pairs() == []

        app.insert("orders", {"_id": "o1", "customer_id": "c1",
                              "status": "open"})
        settle(cluster, broker)
        assert wait_for(lambda: len(view.pairs()) == 1)
        pair = view.pairs()[0]
        assert pair["left"]["_id"] == "o1"
        assert pair["right"]["name"] == "Ada"

        # Deactivating the customer removes the pair via the right side.
        app.update("customers", "c1", {"$set": {"active": False}})
        settle(cluster, broker)
        assert wait_for(lambda: view.pairs() == [])
        view.close()

    def test_join_view_bootstraps_both_sides(self, broker, cluster_factory,
                                             app_server_factory):
        cluster = cluster_factory(2, 2)
        app = app_server_factory()
        app.insert("customers", {"_id": "c1", "active": True, "name": "A"})
        app.insert("orders", {"_id": "o1", "customer_id": "c1",
                              "status": "open"})
        app.insert("orders", {"_id": "o2", "customer_id": "c1",
                              "status": "open"})
        settle(cluster, broker)
        view = LiveJoinView(
            app,
            left=("orders", {"status": "open"}, "customer_id"),
            right=("customers", {"active": True}, "_id"),
        )
        assert len(view.pairs()) == 2
        view.close()

    def test_pair_change_callback(self, broker, cluster_factory,
                                  app_server_factory):
        cluster = cluster_factory(1, 1)
        app = app_server_factory()
        events = []
        view = LiveJoinView(
            app,
            left=("orders", {"status": "open"}, "customer_id"),
            right=("customers", {"active": True}, "_id"),
            on_pair_change=events.append,
        )
        app.insert("customers", {"_id": "c1", "active": True})
        app.insert("orders", {"_id": "o1", "customer_id": "c1",
                              "status": "open"})
        settle(cluster, broker)
        assert wait_for(lambda: len(events) >= 1)
        assert events[-1].match_type.value == "add"
        assert events[-1].key == "o1|c1"
        view.close()
