"""Property-based tests for the query engine (hypothesis).

Core invariants:

* the matcher agrees with a naive reference implementation on
  single-field comparisons;
* document ordering is a total order (antisymmetric, transitive via
  sort consistency, total);
* normalization is invariant under key order and $or branch order;
* find(filter, sort, skip, limit) slices exactly like the definition.
"""

import functools

from hypothesis import given, settings, strategies as st

from repro.query import matches
from repro.query.normalize import normalize_filter, query_hash
from repro.query.sortspec import SortSpec, compare_values

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-1_000, max_value=1_000),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e6, max_value=1e6),
    st.text(alphabet="abcdez", max_size=6),
)

json_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(alphabet="xyz", min_size=1, max_size=3),
                        children, max_size=4),
    ),
    max_leaves=10,
)

documents = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]), json_values, max_size=4
).map(lambda d: {"_id": 0, **d})


class TestValueOrderIsTotal:
    @given(json_values, json_values)
    def test_antisymmetry(self, a, b):
        assert compare_values(a, b) == -compare_values(b, a)

    @given(json_values)
    def test_reflexivity(self, a):
        assert compare_values(a, a) == 0

    @given(st.lists(json_values, min_size=2, max_size=8))
    @settings(max_examples=50)
    def test_sorting_is_consistent(self, values):
        """cmp-based sort and repeated sort agree (total order sanity)."""
        key = functools.cmp_to_key(compare_values)
        once = sorted(values, key=key)
        twice = sorted(once, key=key)
        assert once == twice


class TestMatcherAgainstReference:
    @given(documents, st.integers(min_value=-5, max_value=5))
    def test_gte_against_reference(self, doc, bound):
        predicted = matches(doc, {"a": {"$gte": bound}})
        value = doc.get("a")
        candidates = [value] if not isinstance(value, list) else [value, *value]
        expected = any(
            isinstance(c, (int, float)) and not isinstance(c, bool) and c >= bound
            for c in candidates
            if "a" in doc
        )
        assert predicted == expected

    @given(documents, scalars)
    def test_ne_is_negation_of_eq(self, doc, value):
        assert matches(doc, {"a": {"$ne": value}}) == (
            not matches(doc, {"a": value})
        )

    @given(documents, st.lists(scalars, min_size=1, max_size=4))
    def test_in_equals_or_of_eq(self, doc, values):
        by_in = matches(doc, {"a": {"$in": values}})
        by_or = matches(doc, {"$or": [{"a": v} for v in values]})
        assert by_in == by_or

    @given(documents, st.integers(-5, 5), st.integers(-5, 5))
    def test_and_of_bounds_equals_merged_operator_doc(self, doc, low, high):
        merged = matches(doc, {"a": {"$gte": low, "$lt": high}})
        split = matches(doc, {"$and": [{"a": {"$gte": low}},
                                       {"a": {"$lt": high}}]})
        assert merged == split

    @given(documents)
    def test_nor_is_negated_or(self, doc):
        branches = [{"a": 1}, {"b": {"$exists": True}}]
        assert matches(doc, {"$nor": branches}) == (
            not matches(doc, {"$or": branches})
        )


class TestNormalizationProperties:
    @given(st.dictionaries(st.sampled_from(["a", "b", "c"]),
                           st.integers(-10, 10), min_size=1, max_size=3))
    def test_key_order_invariance(self, filter_doc):
        shuffled = dict(reversed(list(filter_doc.items())))
        assert normalize_filter(filter_doc) == normalize_filter(shuffled)
        assert query_hash(filter_doc) == query_hash(shuffled)

    @given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                              st.integers(-5, 5)),
                    min_size=2, max_size=4, unique_by=lambda t: t))
    def test_or_branch_order_invariance(self, pairs):
        branches = [{field: value} for field, value in pairs]
        forward = normalize_filter({"$or": branches})
        backward = normalize_filter({"$or": list(reversed(branches))})
        assert forward == backward


class TestFindSliceSemantics:
    @given(
        st.lists(st.integers(0, 50), min_size=0, max_size=30),
        st.integers(0, 5),
        st.integers(0, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_skip_limit_is_list_slice(self, values, skip, limit):
        from repro.store.collection import Collection

        collection = Collection("t")
        for index, value in enumerate(values):
            collection.insert({"_id": index, "v": value})
        result = collection.find({}, sort=[("v", 1)], skip=skip, limit=limit)
        everything = collection.find({}, sort=[("v", 1)])
        assert result == everything[skip : skip + limit]

    @given(st.lists(st.integers(0, 20), min_size=0, max_size=25),
           st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_filter_partition(self, values, bound):
        """Every document is in exactly one of: result(pred), result(!pred)."""
        from repro.store.collection import Collection

        collection = Collection("t")
        for index, value in enumerate(values):
            collection.insert({"_id": index, "v": value})
        hits = {d["_id"] for d in collection.find({"v": {"$gte": bound}})}
        misses = {d["_id"] for d in collection.find({"v": {"$lt": bound}})}
        assert hits | misses == set(range(len(values)))
        assert not hits & misses
