"""Equivalence suite: incremental vs legacy sorted-window maintenance.

The incremental O(log W) path (PR 5) must be indistinguishable from the
legacy snapshot-diff path at every observable boundary:

* node level — identical notification streams (including maintenance
  errors and renewal deltas) for arbitrary add/change/remove/churn
  workloads over arbitrary offset/limit/slack geometry;
* cluster level — identical client-visible streams under the
  deterministic inline execution model, and identical converged results
  under the threaded model, for both values of the
  ``incremental_sorting`` gate;
* coalescing — the ``notification_coalescing`` batch optimization must
  leave client materialization unchanged: replaying the coalesced
  stream yields the same visible result as replaying the full stream.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import InvaliDBCluster, _MatchingBolt
from repro.core.config import InvaliDBConfig
from repro.core.filtering import MatchEvent
from repro.core.server import AppServer
from repro.core.sorting import SortingNode
from repro.event.broker import Broker
from repro.query.engine import Query
from repro.runtime.execution import ExecutionConfig, InlineExecutionModel
from repro.types import MatchType

from tests.conftest import settle


# ----------------------------------------------------------------------
# Node level: raw event streams
# ----------------------------------------------------------------------

@st.composite
def node_workloads(draw):
    offset = draw(st.sampled_from([0, 0, 1, 3]))
    limit = draw(st.sampled_from([None, 1, 2, 3, 5]))
    slack = draw(st.sampled_from([1, 2, 5]))
    bootstrap_scores = draw(
        st.lists(st.integers(0, 20), min_size=0, max_size=12)
    )
    steps = draw(
        st.lists(
            st.tuples(
                st.integers(0, 15),                    # key index
                st.sampled_from(["up", "up", "rm"]),   # upserts dominate
                st.integers(0, 20),                    # new score
                st.integers(0, 3),                     # version choice
            ),
            min_size=1,
            max_size=30,
        )
    )
    return offset, limit, slack, bootstrap_scores, steps


def _run_node(incremental, workload):
    """Drive one SortingNode, renewing after each maintenance error."""
    offset, limit, slack, bootstrap_scores, steps = workload
    query = Query({}, collection="c", sort=[("score", 1)],
                  limit=limit, offset=offset)
    bootstrap = [
        {"_id": f"k{i}", "score": score}
        for i, score in enumerate(bootstrap_scores)
    ]
    versions = {doc["_id"]: 1 for doc in bootstrap}
    node = SortingNode(incremental=incremental)
    stream = [("register", node.register_query(
        query, [dict(d) for d in bootstrap], dict(versions), slack))]
    seen_versions = {f"k{i}": 1 for i in range(16)}
    for step, (key_index, kind, score, version_choice) in enumerate(steps):
        if node.state_of(query.query_id) is None:
            # Renewal after a maintenance error: same paper flow, fixed
            # bootstrap so both paths renew from identical state.
            stream.append(("renew", node.register_query(
                query, [dict(d) for d in bootstrap], dict(versions),
                slack, timestamp=float(step))))
        key = f"k{key_index}"
        top = seen_versions[key]
        version = [0, max(0, top - 1), top, top + 1][version_choice]
        seen_versions[key] = max(top, version)
        if kind == "rm":
            event = MatchEvent(query.query_id, MatchType.REMOVE, key, None,
                               version, float(step), True)
        else:
            event = MatchEvent(query.query_id, MatchType.ADD, key,
                               {"_id": key, "score": score}, version,
                               float(step), True)
        stream.append((kind, node.handle_event(event)))
    stream.append(("deactivate", node.deactivate_query(query.query_id)))
    stream.append(("reregister", node.register_query(
        query, [dict(d) for d in bootstrap], dict(versions), slack,
        timestamp=9999.0)))
    stream.append(("renewals", node.renewals_requested))
    return stream


@settings(max_examples=120, deadline=None)
@given(workload=node_workloads())
def test_node_streams_identical_across_paths(workload):
    """Both maintenance paths emit bit-for-bit identical streams —
    including maintenance errors, renewal deltas after errors and after
    deactivation, and stale-version suppression."""
    assert _run_node(True, workload) == _run_node(False, workload)


# ----------------------------------------------------------------------
# Cluster level: client-visible streams under both execution models
# ----------------------------------------------------------------------

cluster_operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.sampled_from(["insert", "update", "delete"]),
        st.integers(min_value=0, max_value=50),
    ),
    min_size=1,
    max_size=30,
)


def _apply_cluster_op(app, live, key, op, value):
    if op == "insert":
        if key in live:
            app.update("items", key, {"$set": {"v": value}})
        else:
            app.insert("items", {"_id": key, "v": value})
            live.add(key)
    elif op == "update":
        if key in live:
            app.update("items", key, {"$set": {"v": value}})
    elif op == "delete":
        if key in live:
            app.delete("items", key)
            live.discard(key)


def _notification_fingerprint(subscription):
    return [
        (n.match_type, n.key, json.dumps(n.document, sort_keys=True),
         n.index, n.old_index, n.error)
        for n in subscription.notifications
    ]


def _run_inline_cluster(ops, incremental):
    model = InlineExecutionModel(ExecutionConfig(mode="inline", seed=13))
    broker = Broker(execution=model)
    config = InvaliDBConfig(
        query_partitions=2, write_partitions=2,
        retention_seconds=3600.0, default_slack=2,
        incremental_sorting=incremental,
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("equiv-app", broker, config=config)
    try:
        # Pre-populate, then subscribe: the bootstrap + retention-replay
        # registration path runs under both gates.
        live = set()
        half = len(ops) // 2
        for key, op, value in ops[:half]:
            _apply_cluster_op(app, live, key, op, value)
        assert broker.drain()
        top = app.subscribe("items", {}, sort=[("v", -1)], limit=3)
        flat = app.subscribe("items", {"v": {"$gte": 10}})
        assert broker.drain()
        for key, op, value in ops[half:]:
            _apply_cluster_op(app, live, key, op, value)
        assert broker.drain()
        return (
            [d["_id"] for d in (top.initial.documents or [])],
            _notification_fingerprint(top),
            _notification_fingerprint(flat),
            json.dumps(top.result(), sort_keys=True),
            json.dumps(flat.result(), sort_keys=True),
            list(top.errors),
            cluster.queries_renewed,
        )
    finally:
        app.close()
        cluster.stop()
        broker.close()
        model.shutdown()


@settings(max_examples=20, deadline=None)
@given(ops=cluster_operations)
def test_inline_cluster_streams_identical_across_gates(ops):
    """Under the deterministic inline model the full client-visible
    notification streams (sorted and unsorted subscriptions, renewal
    counts included) are identical with incremental sorting on or off."""
    assert _run_inline_cluster(ops, True) == _run_inline_cluster(ops, False)


def _run_threaded_cluster(ops, incremental, coalescing):
    broker = Broker()
    config = InvaliDBConfig(
        query_partitions=2, write_partitions=2,
        retention_seconds=3600.0, default_slack=3,
        incremental_sorting=incremental,
        notification_coalescing=coalescing,
    )
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("equiv-app", broker, config=config)
    try:
        top = app.subscribe("items", {}, sort=[("v", -1)], limit=3)
        flat = app.subscribe("items", {"v": {"$gte": 10}})
        live = set()
        for key, op, value in ops:
            _apply_cluster_op(app, live, key, op, value)
        settle(cluster, broker, rounds=5)
        truth_top = [
            d["_id"]
            for d in app.find("items", {}, sort=[("v", -1)], limit=3)
        ]
        truth_flat = {d["_id"] for d in app.find("items",
                                                 {"v": {"$gte": 10}})}
        return (
            [d["_id"] for d in top.result()], truth_top,
            {d["_id"] for d in flat.result()}, truth_flat,
        )
    finally:
        app.close()
        cluster.stop()
        broker.close()


@settings(max_examples=8, deadline=None)
@given(ops=cluster_operations)
def test_threaded_cluster_converges_identically_across_gates(ops):
    """Under the threaded (batched) model all four gate combinations
    converge to the database truth — the coalescer and the incremental
    differ change no converged result."""
    for incremental in (True, False):
        for coalescing in (True, False):
            top, truth_top, flat, truth_flat = _run_threaded_cluster(
                ops, incremental, coalescing
            )
            assert top == truth_top, (incremental, coalescing)
            assert flat == truth_flat, (incremental, coalescing)


# ----------------------------------------------------------------------
# Coalescer semantics: batch-collapsed streams materialize identically
# ----------------------------------------------------------------------

@st.composite
def legal_batches(draw):
    """A batch of per-key-consistent unsorted match events.

    The filtering stage emits, per (query, key), an alternating
    membership sequence: ``add`` only when the key was absent,
    ``change``/``remove`` only while present.  Versions strictly
    increase per key (retention drops stale writes before matching).
    """
    n_keys = draw(st.integers(1, 4))
    known = {k: draw(st.booleans()) for k in range(n_keys)}
    initial = {k for k, present in known.items() if present}
    version = {k: 1 for k in range(n_keys)}
    events = []
    for _ in range(draw(st.integers(1, 12))):
        key = draw(st.integers(0, n_keys - 1))
        if known[key]:
            match_type = draw(st.sampled_from(
                [MatchType.CHANGE, MatchType.REMOVE]
            ))
        else:
            match_type = MatchType.ADD
        known[key] = match_type is not MatchType.REMOVE
        version[key] += 1
        document = (
            None if match_type is MatchType.REMOVE
            else {"_id": key, "v": version[key]}
        )
        events.append(MatchEvent("q", match_type, key, document,
                                 version[key], 0.0, False))
    return initial, events


def _materialize(initial, events):
    """Replicate RealTimeSubscription._apply for unsorted streams."""
    documents = {key: {"_id": key, "v": 1} for key in initial}
    order = list(initial)
    for event in events:
        if event.match_type is MatchType.REMOVE:
            documents.pop(event.key, None)
            if event.key in order:
                order.remove(event.key)
        elif event.match_type is MatchType.ADD:
            documents[event.key] = event.document
            if event.key not in order:
                order.append(event.key)
        else:  # CHANGE updates the document but never enters the order.
            documents[event.key] = event.document
    return {key: documents[key] for key in order}


@settings(max_examples=150, deadline=None)
@given(batch=legal_batches())
def test_coalesced_batch_materializes_identically(batch):
    initial, events = batch
    stub = SimpleNamespace(
        config=SimpleNamespace(notification_coalescing=True),
        notifications_coalesced=0,
        telemetry=SimpleNamespace(enabled=False),
    )
    bolt = _MatchingBolt(stub)
    pairs = [(event, None, None) for event in events]
    coalesced = [event for event, _, _ in bolt._coalesce(pairs)]
    assert _materialize(initial, coalesced) == _materialize(initial, events)
    # At most one surviving notification per key.
    keys = [event.key for event in coalesced]
    assert len(keys) == len(set(keys))
    assert stub.notifications_coalesced == len(events) - len(coalesced)
