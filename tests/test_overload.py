"""Overload control and graceful degradation, end to end.

The robustness claims under test:

* **zero-cost when clean** — with ``overload_control=True`` but a
  measured-healthy cluster, every overload counter is exactly zero and
  the notification transcript is byte-identical to a gates-off run;
* **convergence-safe shedding** — with the cluster pinned degraded,
  sorted diff streams are replaced by snapshot refreshes and unsorted
  changes ride the pressure coalescer, yet the final client state is
  byte-identical to an unshedded run (hypothesis property, plus a
  crash + retention-replay interleaving);
* **admission control** — a forced-overloaded cluster rejects writes
  over budget with ``overload-rejected`` + retry-after, the client
  resubmits with jittered backoff and abandons after the cap, and the
  AIMD governor reacts to *measured* pressure only;
* **deadline budgets** — stale writes (delayed past their budget) are
  shed deterministically under the inline model;
* **attribution** — ``drop_oldest`` evictions carry stage/partition
  labels and land in the slow-event log as structured records.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.cluster import InvaliDBCluster, _NotificationStager
from repro.core.config import InvaliDBConfig
from repro.core.overload import (
    DEGRADED,
    HEALTHY,
    OVERLOADED,
    AdmissionGovernor,
    HealthMonitor,
    OverloadController,
)
from repro.core.server import AppServer
from repro.errors import ClusterConfigError
from repro.event.broker import Broker
from repro.event.wire import BinaryCodec
from repro.runtime.execution import (
    ExecutionConfig,
    InlineExecutionModel,
    _eviction_logger,
    _mailbox_labels,
)
from repro.runtime.faults import FaultPlan


# ----------------------------------------------------------------------
# Unit: the AIMD admission governor
# ----------------------------------------------------------------------


class TestAdmissionGovernor:
    def build(self, **kwargs):
        defaults = dict(initial_rate=10.0, min_rate=1.0, max_rate=100.0,
                        increase=5.0, decrease=0.5, burst=4, now=0.0)
        defaults.update(kwargs)
        return AdmissionGovernor(**defaults)

    def test_burst_then_reject(self):
        governor = self.build()
        assert [governor.try_admit(0.0) for _ in range(4)] == [True] * 4
        assert governor.try_admit(0.0) is False
        assert governor.admitted == 4
        assert governor.rejected == 1

    def test_tokens_refill_at_rate(self):
        governor = self.build()
        for _ in range(4):
            governor.try_admit(0.0)
        # 10/s * 0.5s = 5 tokens, capped at burst 4.
        assert [governor.try_admit(0.5) for _ in range(4)] == [True] * 4
        assert governor.try_admit(0.5) is False

    def test_retry_after_covers_the_deficit(self):
        governor = self.build()
        for _ in range(4):
            governor.try_admit(0.0)
        hint = governor.retry_after()
        assert hint > 0
        assert governor.try_admit(hint) is True

    def test_aimd_multiplicative_decrease_additive_increase(self):
        governor = self.build()
        governor.on_pressure()
        assert governor.rate == pytest.approx(5.0)
        governor.on_pressure()
        assert governor.rate == pytest.approx(2.5)
        governor.on_clear()
        assert governor.rate == pytest.approx(7.5)
        assert governor.pressure_events == 2

    def test_rate_stays_inside_bounds(self):
        governor = self.build()
        for _ in range(20):
            governor.on_pressure()
        assert governor.rate == pytest.approx(1.0)  # min_rate floor
        for _ in range(100):
            governor.on_clear()
        assert governor.rate == pytest.approx(100.0)  # max_rate ceiling


# ----------------------------------------------------------------------
# Unit: the hysteresis health monitor
# ----------------------------------------------------------------------


class TestHealthMonitor:
    def build(self):
        return HealthMonitor(depth_threshold=100, dwell_threshold=0.5,
                             degraded_fraction=0.5, recovery_ticks=2)

    def test_escalates_immediately(self):
        monitor = self.build()
        assert monitor.observe("m[0]", depth=100, dwell_p99=0.0,
                               drops_delta=0) == OVERLOADED
        assert monitor.cluster_state == OVERLOADED

    def test_degraded_at_fraction(self):
        monitor = self.build()
        assert monitor.observe("m[0]", depth=50, dwell_p99=0.0,
                               drops_delta=0) == DEGRADED

    def test_drops_mean_overloaded(self):
        monitor = self.build()
        assert monitor.observe("m[0]", depth=0, dwell_p99=0.0,
                               drops_delta=3) == OVERLOADED

    def test_recovery_needs_consecutive_clean_ticks(self):
        monitor = self.build()
        monitor.observe("m[0]", depth=200, dwell_p99=0.0, drops_delta=0)
        # One clean tick is not enough (recovery_ticks=2)…
        assert monitor.observe("m[0]", 0, 0.0, 0) == OVERLOADED
        # …the second steps DOWN one level, not straight to healthy…
        assert monitor.observe("m[0]", 0, 0.0, 0) == DEGRADED
        monitor.observe("m[0]", 0, 0.0, 0)
        assert monitor.observe("m[0]", 0, 0.0, 0) == HEALTHY

    def test_relapse_resets_the_recovery_count(self):
        monitor = self.build()
        monitor.observe("m[0]", depth=200, dwell_p99=0.0, drops_delta=0)
        monitor.observe("m[0]", 0, 0.0, 0)
        monitor.observe("m[0]", depth=200, dwell_p99=0.0, drops_delta=0)
        assert monitor.observe("m[0]", 0, 0.0, 0) == OVERLOADED

    def test_cluster_state_is_the_worst_partition(self):
        monitor = self.build()
        monitor.observe("m[0]", 0, 0.0, 0)
        monitor.observe("m[1]", depth=60, dwell_p99=0.0, drops_delta=0)
        assert monitor.states()["m[0]"] == HEALTHY
        assert monitor.states()["m[1]"] == DEGRADED
        assert monitor.cluster_state == DEGRADED

    def test_measured_state_has_no_recovery_damping(self):
        # The hysteresis state holds OVERLOADED through the recovery
        # window, but the instant view — the AIMD governor's feed —
        # must report HEALTHY the moment the queue is measured empty,
        # or the governor keeps multiplying the rate down long after
        # the backlog drained.
        monitor = self.build()
        monitor.observe("m[0]", depth=200, dwell_p99=0.0, drops_delta=0)
        assert monitor.measured_state == OVERLOADED
        monitor.observe("m[0]", 0, 0.0, 0)
        assert monitor.cluster_state == OVERLOADED  # damped
        assert monitor.measured_state == HEALTHY    # instant

    def test_measured_state_is_the_worst_instant_partition(self):
        monitor = self.build()
        monitor.observe("m[0]", 0, 0.0, 0)
        monitor.observe("m[1]", depth=60, dwell_p99=0.0, drops_delta=0)
        assert monitor.measured_state == DEGRADED


# ----------------------------------------------------------------------
# Unit: the governor feed (instant state + decrease cooldown)
# ----------------------------------------------------------------------


class _StubExecution:
    deterministic = False

    def __init__(self):
        self.depth = 0

    def stats(self):
        return {"mailboxes": {"matching[0]": {
            "depth": self.depth, "dropped": 0}}}


class _StubTelemetry:
    enabled = False


class _StubCluster:
    def __init__(self, config):
        self.config = config
        self._execution = _StubExecution()
        self.telemetry = _StubTelemetry()


class TestGovernorFeed:
    def build(self):
        config = InvaliDBConfig(
            overload_control=True, shedding=False,
            health_recovery_ticks=50, health_eval_interval=0.0,
            overload_queue_depth=4,
            admission_initial_rate=100.0, admission_min_rate=10.0,
            admission_max_rate=200.0, admission_increase=5.0,
            admission_decrease=0.5, admission_decrease_cooldown=1.0,
            clock=lambda: 0.0,
        )
        return OverloadController(_StubCluster(config))

    def test_one_decrease_per_cooldown_window(self):
        controller = self.build()
        controller.cluster._execution.depth = 100
        controller.evaluate(now=0.0)
        assert controller.governor.rate == pytest.approx(50.0)
        # Still overloaded 100ms later — inside the cooldown, the rate
        # must not be multiplied down again (one cut per congestion
        # event, not per evaluation tick).
        controller.evaluate(now=0.1)
        assert controller.governor.rate == pytest.approx(50.0)
        controller.evaluate(now=1.1)
        assert controller.governor.rate == pytest.approx(25.0)

    def test_rate_recovers_while_hysteresis_still_overloaded(self):
        controller = self.build()
        controller.cluster._execution.depth = 100
        controller.evaluate(now=0.0)
        assert controller.governor.rate == pytest.approx(50.0)
        # Queue drained: the hysteresis state keeps gating admission
        # (recovery_ticks=50), but the instant view is healthy so the
        # additive climb restarts immediately.
        controller.cluster._execution.depth = 0
        controller.evaluate(now=0.2)
        controller.evaluate(now=0.4)
        assert controller.state == OVERLOADED
        assert controller.monitor.measured_state == HEALTHY
        assert controller.governor.rate == pytest.approx(60.0)


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------


class TestOverloadConfig:
    def test_force_health_requires_overload_control(self):
        with pytest.raises(ClusterConfigError):
            InvaliDBConfig(force_health="degraded")

    def test_force_health_vocabulary(self):
        with pytest.raises(ClusterConfigError):
            InvaliDBConfig(overload_control=True, force_health="on fire")

    @pytest.mark.parametrize("kwargs", [
        dict(admission_initial_rate=0.0),
        dict(admission_min_rate=5000.0),  # min > initial (1000)
        dict(admission_decrease=1.0),
        dict(admission_burst=0),
        dict(deadline_budget_seconds=-1.0),
        dict(refresh_interval_seconds=0.0),
        dict(degraded_fraction=0.0),
        dict(health_recovery_ticks=0),
    ])
    def test_rejects_nonsense_knobs(self, kwargs):
        with pytest.raises(ClusterConfigError):
            InvaliDBConfig(overload_control=True, **kwargs)


# ----------------------------------------------------------------------
# Shared inline harness
# ----------------------------------------------------------------------


def run_workload(writes, seed=0, plan=None, resubscribe=False,
                 **config_kwargs):
    """Run a scripted write mix on the inline model; return everything
    a convergence assertion could want to compare."""
    model = InlineExecutionModel(
        ExecutionConfig(mode="inline", seed=seed, fault_plan=plan)
    )
    broker = Broker(execution=model)
    config_kwargs.setdefault("retention_seconds", 300.0)
    config = InvaliDBConfig(query_partitions=2, write_partitions=2,
                            **config_kwargs)
    cluster = InvaliDBCluster(broker, config).start()
    app = AppServer("ol-app", broker, config=config)
    try:
        flat = app.subscribe("items", {"v": {"$gte": 0}})
        top = app.subscribe("items", {}, sort=[("v", -1)], limit=5)
        assert broker.drain()
        for op, key, value in writes:
            if op == "insert":
                app.insert("items", {"_id": key, "v": value})
            elif op == "update":
                app.update("items", key, {"$set": {"v": value}})
            else:
                app.delete("items", key)
        assert broker.drain()
        if model.fault_injector is not None:
            model.fault_injector.disarm()
            assert broker.drain()
        if resubscribe:
            app.client.resubscribe_all()
            assert broker.drain()
        # stop() flushes staged notifications and pending refreshes —
        # final state must already include them after drain, but the
        # transcript comparison below runs pre-stop, so flush manually.
        if cluster.overload is not None:
            cluster.overload.flush_refresh()
            if cluster.overload.shed_stager is not None:
                cluster.overload.shed_stager.flush()
            assert broker.drain()
        snapshot = cluster.snapshot()
        return {
            "flat": json.dumps(sorted(flat.result(),
                                      key=lambda d: d["_id"]),
                               sort_keys=True),
            "top": json.dumps(top.result(), sort_keys=True),
            "db_flat": json.dumps(
                sorted(app.find("items", {"v": {"$gte": 0}}),
                       key=lambda d: d["_id"]), sort_keys=True),
            "db_top": json.dumps(app.find("items", {}, sort=[("v", -1)],
                                          limit=5), sort_keys=True),
            "transcript": [
                (n.match_type.value, n.key, n.version,
                 json.dumps(n.document, sort_keys=True, default=str))
                for n in flat.notifications
            ],
            "health": snapshot.get("health"),
            "client": app.client.stats(),
            "deadline_shed": cluster._deadline_shed_total(),
        }
    finally:
        app.close()
        cluster.stop()
        broker.close()
        model.shutdown()


def legalize(writes):
    """Map an arbitrary generated op stream onto a legal one: inserts
    of live keys become updates, updates/deletes of dead keys become
    inserts.  Pure, so both runs of a comparison see the same mix."""
    live = set()
    legal = []
    for op, key, value in writes:
        if op == "insert" and key in live:
            op = "update"
        elif op != "insert" and key not in live:
            op = "insert"
        if op == "insert":
            live.add(key)
        elif op == "delete":
            live.discard(key)
        legal.append((op, key, value))
    return legal


def scripted_mix(n=30):
    writes = [("insert", i, i) for i in range(n)]
    writes += [("update", i, i + 100) for i in range(0, n, 3)]
    writes += [("delete", i, None) for i in range(0, n, 7)]
    return writes


# ----------------------------------------------------------------------
# Zero-cost when clean: counters and transcripts
# ----------------------------------------------------------------------


class TestCleanRuns:
    def test_all_overload_counters_zero_when_healthy(self):
        run = run_workload(scripted_mix(), overload_control=True)
        health = run["health"]
        assert health["state"] == "healthy"
        for key in ("writes_rejected", "writes_dropped",
                    "notifications_shed", "sorted_changes_shed",
                    "refreshes_sent", "deadline_shed"):
            assert health[key] == 0, key
        assert health["admission"]["rejected"] == 0
        assert health["admission"]["pressure_events"] == 0
        assert run["client"]["writes_rejected"] == 0
        assert run["client"]["writes_resubmitted"] == 0
        assert run["client"]["writes_abandoned"] == 0
        assert run["client"]["refreshes_received"] == 0

    def test_gates_on_transcript_identical_to_gates_off(self):
        """Measured-healthy overload control is invisible: the client
        sees the byte-identical notification stream gates-off sees."""
        on = run_workload(scripted_mix(), overload_control=True)
        off = run_workload(scripted_mix())
        assert on["transcript"] == off["transcript"]
        assert on["flat"] == off["flat"]
        assert on["top"] == off["top"]
        assert off["health"] is None  # gates off: no health section at all

    def test_deadline_budget_alone_sheds_nothing_when_fast(self):
        run = run_workload(scripted_mix(), overload_control=True,
                           deadline_budget_seconds=30.0)
        assert run["deadline_shed"] == 0
        assert run["flat"] == run["db_flat"]


# ----------------------------------------------------------------------
# Convergence-safe shedding (the tentpole property)
# ----------------------------------------------------------------------

ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete"]),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=99),
    ),
    min_size=5, max_size=60,
)


class TestShedConvergence:
    @given(writes=ops, seed=st.integers(min_value=0, max_value=9))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_degraded_shedding_converges_byte_identically(self, writes,
                                                          seed):
        """The acceptance property: snapshot-refresh + coalesced
        shedding must leave the final client state byte-identical to an
        unshedded run of the same workload, across seeds."""
        writes = legalize(writes)
        shed = run_workload(writes, seed=seed, overload_control=True,
                            force_health="degraded")
        plain = run_workload(writes, seed=seed)
        assert shed["flat"] == plain["flat"]
        assert shed["top"] == plain["top"]
        assert shed["flat"] == shed["db_flat"]
        assert shed["top"] == shed["db_top"]

    @pytest.mark.parametrize("seed", range(10))
    def test_shedding_survives_crash_and_replay(self, seed):
        """Shedding composes with supervised recovery: crash a matching
        node mid-stream while degraded, let retention replay repair it,
        and still demand byte-identical convergence."""
        plan = FaultPlan(seed=seed).rule("mailbox", "matching*", "crash",
                                         at=[25])
        shed = run_workload(scripted_mix(), seed=seed, plan=plan,
                            resubscribe=True, overload_control=True,
                            force_health="degraded")
        plain = run_workload(scripted_mix(), seed=seed)
        assert shed["flat"] == plain["flat"]
        assert shed["top"] == plain["top"]
        assert shed["flat"] == shed["db_flat"]
        assert shed["top"] == shed["db_top"]

    def test_degraded_run_actually_sheds(self):
        run = run_workload(scripted_mix(60), overload_control=True,
                           force_health="degraded")
        assert run["health"]["sorted_changes_shed"] > 0
        assert run["health"]["refreshes_sent"] > 0
        assert run["client"]["refreshes_received"] > 0

    def test_error_changes_bypass_shedding(self):
        """Renewal-demanding error changes must never be deferred into
        a snapshot refresh — renewal semantics have to go live.  A
        delete-heavy mix with minimal slack underflows the sorted
        window, forcing maintenance errors mid-shed; the run only
        converges if the renewal round-trip still happens live."""
        writes = [("insert", i, i) for i in range(12)]
        writes += [("delete", i, None) for i in range(10)]
        run = run_workload(writes, overload_control=True,
                           force_health="degraded", default_slack=1)
        assert run["top"] == run["db_top"]
        assert run["flat"] == run["db_flat"]


# ----------------------------------------------------------------------
# Admission control under forced overload
# ----------------------------------------------------------------------


class TestAdmissionControl:
    def overloaded_run(self, **kwargs):
        config = dict(overload_control=True, force_health="overloaded",
                      admission_burst=4, admission_initial_rate=100.0,
                      admission_min_rate=100.0, client_rng_seed=7)
        config.update(kwargs)
        return run_workload(scripted_mix(), **config)

    def test_rejections_flow_back_and_client_resubmits(self):
        run = self.overloaded_run()
        health = run["health"]
        assert health["writes_rejected"] > 0
        assert health["writes_dropped"] == 0  # every reject was routed
        client = run["client"]
        assert client["writes_rejected"] == health["writes_rejected"]
        assert client["writes_resubmitted"] > 0
        assert client["cluster_health"] == "overloaded"
        assert client["backoff_waited"] > 0

    def test_resubmits_are_bounded(self):
        run = self.overloaded_run(admission_max_resubmits=2)
        client = run["client"]
        assert client["writes_abandoned"] > 0
        # Each write is resubmitted at most the configured cap.
        assert client["writes_resubmitted"] <= 2 * 95  # writes in mix

    def test_resubscription_reconciles_after_rejection_loss(self):
        """Abandoned writes are real, *attributed* loss — and the
        client's existing re-subscription path reconciles the result
        back to the database once the storm has been ridden out.  The
        retention window is effectively zero — as in the threaded chaos
        test, re-registration must not replay stale after-images of
        writes whose later deletes were the ones rejected."""
        run = self.overloaded_run(resubscribe=True,
                                  retention_seconds=1e-6)
        assert run["client"]["writes_abandoned"] > 0
        assert run["flat"] == run["db_flat"]
        assert run["top"] == run["db_top"]

    def test_same_seed_rejection_runs_are_identical(self):
        first = self.overloaded_run()
        second = self.overloaded_run()
        assert first["health"]["writes_rejected"] == \
            second["health"]["writes_rejected"]
        assert first["client"] == second["client"]
        assert first["flat"] == second["flat"]

    def test_aimd_ignores_forced_state(self):
        """The governor reacts to *measured* pressure only: pinning the
        cluster overloaded must not collapse the admission rate."""
        run = self.overloaded_run()
        assert run["health"]["admission"]["pressure_events"] == 0
        assert run["health"]["admission"]["rate"] >= 100.0


# ----------------------------------------------------------------------
# Deadline budgets
# ----------------------------------------------------------------------


class TestDeadlineBudgets:
    def delayed_run(self, seed=3):
        plan = FaultPlan(seed=seed).rule(
            "channel", "invalidb:writes*", "delay", delay=0.5,
            at=list(range(3, 10)),
        )
        return run_workload([("insert", i, i) for i in range(10)],
                            seed=seed, plan=plan, overload_control=True,
                            deadline_budget_seconds=0.1)

    def test_stale_writes_are_shed(self):
        run = self.delayed_run()
        # 7 delayed writes, each shed on both query-partition rows of
        # the 2x2 grid it fans out to.
        assert run["deadline_shed"] == 14
        assert len(json.loads(run["flat"])) == 3

    def test_deadline_shedding_is_deterministic(self):
        first = self.delayed_run()
        second = self.delayed_run()
        assert first["deadline_shed"] == second["deadline_shed"]
        assert first["flat"] == second["flat"]
        assert first["transcript"] == second["transcript"]

    def test_envelope_extra_keys_survive_the_binary_wire(self):
        codec = BinaryCodec()
        envelope = {"kind": "write", "key": 7, "version": 3,
                    "op": "insert", "collection": "items",
                    "document": {"_id": 7, "v": 7},
                    "deadline": 1234.5, "origin": "app-1"}
        restored = codec.decode(codec.encode(envelope))
        assert restored["deadline"] == 1234.5
        assert restored["origin"] == "app-1"


# ----------------------------------------------------------------------
# Satellite: stager flush on shutdown
# ----------------------------------------------------------------------


class TestStagerShutdownFlush:
    def test_stop_flushes_staged_notifications(self):
        """Notifications staged inside an open coalescing window must
        reach the client on cluster stop, not be dropped with it."""
        model = InlineExecutionModel(ExecutionConfig(mode="inline",
                                                     seed=1))
        broker = Broker(execution=model)
        config = InvaliDBConfig(coalescing_window_seconds=60.0)
        cluster = InvaliDBCluster(broker, config).start()
        app = AppServer("flush-app", broker, config=config)
        try:
            sub = app.subscribe("items", {"v": {"$gte": 0}})
            for i in range(5):
                app.insert("items", {"_id": i, "v": i})
            # The inline trampoline already ran the whole pipeline, but
            # the flush timer has not fired: everything is staged.
            assert sub.result() == []
            cluster.stop()
            assert sorted(d["_id"] for d in sub.result()) == list(range(5))
        finally:
            app.close()
            cluster.stop()
            broker.close()
            model.shutdown()

    def test_stop_flushes_the_shed_stager_and_pending_refreshes(self):
        model = InlineExecutionModel(ExecutionConfig(mode="inline",
                                                     seed=1))
        broker = Broker(execution=model)
        config = InvaliDBConfig(overload_control=True,
                                force_health="degraded",
                                shed_coalescing_window=60.0,
                                refresh_interval_seconds=60.0)
        cluster = InvaliDBCluster(broker, config).start()
        app = AppServer("flush-app", broker, config=config)
        try:
            flat = app.subscribe("items", {"v": {"$gte": 0}})
            top = app.subscribe("items", {}, sort=[("v", -1)], limit=3)
            for i in range(5):
                app.insert("items", {"_id": i, "v": i})
            assert flat.result() == []  # staged behind the huge window
            cluster.stop()
            assert sorted(d["_id"] for d in flat.result()) == \
                list(range(5))
            assert [d["_id"] for d in top.result()] == [4, 3, 2]
        finally:
            app.close()
            cluster.stop()
            broker.close()
            model.shutdown()


# ----------------------------------------------------------------------
# Satellite: eviction attribution
# ----------------------------------------------------------------------


class TestEvictionAttribution:
    def test_mailbox_labels_parse_stage_and_partition(self):
        assert _mailbox_labels("matching[3]") == ("matching", "3")
        assert _mailbox_labels("write-ingestion[0]") == \
            ("write-ingestion", "0")
        assert _mailbox_labels("broker") == ("broker", "-")

    def test_drop_oldest_evictions_are_attributed(self):
        from repro.obs.telemetry import TelemetryConfig, build_telemetry

        telemetry = build_telemetry(TelemetryConfig(trace_sample_rate=1.0))
        model = InlineExecutionModel(ExecutionConfig(mode="inline"))
        model.set_telemetry(telemetry)
        held = []
        box = model.mailbox("matching[2]", held.extend, capacity=2,
                            policy="drop_oldest")
        box.put_many([
            ("chan", {"kind": "write", "key": k}) for k in range(4)
        ])
        assert box.stats()["dropped"] == 2
        events = [e for e in telemetry.tracer.slow_events
                  if e.get("kind") == "eviction"]
        assert len(events) == 2
        assert events[0]["mailbox"] == "matching[2]"
        assert events[0]["stage"] == "matching"
        assert events[0]["partition"] == "2"
        assert events[0]["evicted_kind"] == "write"
        assert [e["key"] for e in events] == [0, 1]
        counters = [m for m in telemetry.registry.metrics()
                    if m.name == "mailbox.dropped" and m.value]
        labels = dict(counters[0].labels)
        assert labels["stage"] == "matching"
        assert labels["partition"] == "2"

    def test_eviction_records_render_in_the_slow_log(self):
        from repro.obs.export import format_slow_events
        from repro.obs.telemetry import TelemetryConfig, build_telemetry

        telemetry = build_telemetry(TelemetryConfig())
        logger = _eviction_logger(telemetry, "sorting[0]")
        logger(("chan", {"kind": "match-event", "key": 9}))
        out = format_slow_events(telemetry)
        assert "eviction mailbox=sorting[0]" in out
        assert "stage=sorting partition=0" in out
        assert "payload=match-event key=9" in out

    def test_null_tracer_disables_the_logger(self):
        from repro.obs.telemetry import build_telemetry

        telemetry = build_telemetry(None)
        assert _eviction_logger(telemetry, "matching[0]") is None


# ----------------------------------------------------------------------
# Sorting-node snapshot reads
# ----------------------------------------------------------------------


class TestVisibleWindow:
    def test_visible_window_matches_subscription_result(self,
                                                        cluster_factory,
                                                        broker,
                                                        app_server_factory):
        cluster = cluster_factory()
        app = app_server_factory(config=cluster.config)
        sub = app.subscribe("items", {}, sort=[("v", -1)], limit=3)
        broker.drain()
        for i in range(8):
            app.insert("items", {"_id": i, "v": i})
        broker.drain()
        cluster.drain()
        broker.drain()
        query_id = next(iter(app.client._queries))
        windows = [node.visible_window(query_id)
                   for node in cluster._sorting_nodes.values()]
        windows = [w for w in windows if w is not None]
        assert len(windows) == 1
        assert windows[0] == sub.result()

    def test_unknown_query_yields_none(self, cluster_factory):
        cluster = cluster_factory()
        node = next(iter(cluster._sorting_nodes.values()))
        assert node.visible_window("nope") is None


# ----------------------------------------------------------------------
# The stager's pluggable coalesce callback
# ----------------------------------------------------------------------


class TestStagerCallback:
    def test_on_coalesce_diverts_the_counter(self):
        from repro.core.notifications import QueryChange
        from repro.types import MatchType

        class StubCluster:
            notifications_coalesced = 0

            class _execution:
                @staticmethod
                def call_later(delay, fn):
                    return None

        hits = []
        stub = StubCluster()
        stager = _NotificationStager(stub, window=10.0,
                                     on_coalesce=lambda: hits.append(1))
        first = QueryChange(query_id="q", match_type=MatchType.ADD,
                            key=1, document={"_id": 1}, version=1)
        second = QueryChange(query_id="q", match_type=MatchType.CHANGE,
                             key=1, document={"_id": 1, "v": 2},
                             version=2)
        assert stager.offer(first, None) is True
        assert stager.offer(second, None) is True
        assert len(hits) == 1  # the second offer superseded the first
        assert stub.notifications_coalesced == 0
