"""Storm-like substrate tests: groupings, topology building, runtime."""

import time
from typing import Any, Dict, List

import pytest

from repro.errors import TopologyError
from repro.stream.topology import (
    AllGrouping,
    Bolt,
    CustomGrouping,
    DirectGrouping,
    FieldsGrouping,
    ShuffleGrouping,
    Spout,
    TopologyBuilder,
)
from repro.stream.runtime import LocalRuntime


class CollectorBolt(Bolt):
    """Collects received tuples, tagged with the receiving task index."""

    instances: List["CollectorBolt"] = []

    def __init__(self):
        self.received: List[Dict[str, Any]] = []

    def clone(self):
        clone = CollectorBolt()
        CollectorBolt.instances.append(clone)
        return clone

    def process(self, tuple_):
        self.received.append(dict(tuple_))


class ForwardBolt(Bolt):
    def clone(self):
        return ForwardBolt()

    def process(self, tuple_):
        self.emit({**tuple_, "hop": tuple_.get("hop", 0) + 1})


class CountdownSpout(Spout):
    def __init__(self, count: int = 5):
        self.count = count

    def clone(self):
        return CountdownSpout(self.count)

    def next_batch(self):
        if self.count <= 0:
            return None
        self.count -= 1
        return [{"n": self.count}]


class TestGroupings:
    def test_fields_grouping_is_deterministic(self):
        grouping = FieldsGrouping("key")
        first = grouping.select({"key": "abc"}, 8)
        second = grouping.select({"key": "abc"}, 8)
        assert first == second
        assert 0 <= first[0] < 8

    def test_fields_grouping_spreads_keys(self):
        grouping = FieldsGrouping("key")
        targets = {grouping.select({"key": f"k{i}"}, 8)[0] for i in range(200)}
        assert len(targets) == 8

    def test_all_grouping_broadcasts(self):
        assert list(AllGrouping().select({}, 4)) == [0, 1, 2, 3]

    def test_shuffle_round_robin(self):
        grouping = ShuffleGrouping()
        picks = [grouping.select({}, 3)[0] for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_direct_grouping(self):
        grouping = DirectGrouping()
        assert grouping.select({"__task__": 2}, 4) == (2,)
        with pytest.raises(TopologyError):
            grouping.select({"__task__": 9}, 4)
        with pytest.raises(TopologyError):
            grouping.select({}, 4)

    def test_custom_grouping(self):
        grouping = CustomGrouping(lambda t, n: [0, n - 1])
        assert grouping.select({}, 5) == [0, 4]

    def test_fields_grouping_requires_fields(self):
        with pytest.raises(TopologyError):
            FieldsGrouping()


class TestBuilderValidation:
    def test_duplicate_component(self):
        builder = TopologyBuilder().add_bolt("b", CollectorBolt())
        with pytest.raises(TopologyError):
            builder.add_bolt("b", CollectorBolt())

    def test_unknown_endpoint(self):
        builder = TopologyBuilder().add_bolt("b", CollectorBolt())
        with pytest.raises(TopologyError):
            builder.connect("b", "missing", AllGrouping())

    def test_cannot_connect_into_spout(self):
        builder = (
            TopologyBuilder()
            .add_spout("s", CountdownSpout())
            .add_bolt("b", CollectorBolt())
        )
        with pytest.raises(TopologyError):
            builder.connect("b", "s", AllGrouping())

    def test_invalid_parallelism(self):
        with pytest.raises(TopologyError):
            TopologyBuilder().add_bolt("b", CollectorBolt(), parallelism=0)

    def test_empty_topology(self):
        with pytest.raises(TopologyError):
            TopologyBuilder().build()


def wait_for(predicate, timeout: float = 2.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestRuntime:
    def test_spout_to_bolt_flow(self):
        topology = (
            TopologyBuilder()
            .add_spout("src", CountdownSpout(5))
            .add_bolt("sink", CollectorBolt())
            .connect("src", "sink", ShuffleGrouping())
            .build()
        )
        with LocalRuntime(topology) as runtime:
            assert wait_for(
                lambda: sum(
                    len(c.received)
                    for c in runtime.task_components("sink")
                ) == 5
            )

    def test_broadcast_reaches_every_task(self):
        topology = (
            TopologyBuilder()
            .add_bolt("entry", ForwardBolt())
            .add_bolt("sink", CollectorBolt(), parallelism=4)
            .connect("entry", "sink", AllGrouping())
            .build()
        )
        with LocalRuntime(topology) as runtime:
            runtime.inject("entry", {"v": 1})
            assert wait_for(
                lambda: all(
                    len(c.received) == 1
                    for c in runtime.task_components("sink")
                )
            )

    def test_fields_grouping_keeps_key_affinity(self):
        topology = (
            TopologyBuilder()
            .add_bolt("entry", ForwardBolt())
            .add_bolt("sink", CollectorBolt(), parallelism=4)
            .connect("entry", "sink", FieldsGrouping("key"))
            .build()
        )
        with LocalRuntime(topology) as runtime:
            for _ in range(10):
                runtime.inject("entry", {"key": "constant"})
            runtime.drain()
            non_empty = [
                c for c in runtime.task_components("sink") if c.received
            ]
            assert len(non_empty) == 1
            assert len(non_empty[0].received) == 10

    def test_inject_with_explicit_task(self):
        topology = (
            TopologyBuilder()
            .add_bolt("sink", CollectorBolt(), parallelism=3)
            .build()
        )
        with LocalRuntime(topology) as runtime:
            runtime.inject("sink", {"__task__": 2, "v": 1})
            runtime.drain()
            components = runtime.task_components("sink")
            assert len(components[2].received) == 1
            assert not components[0].received and not components[1].received

    def test_failing_tuple_is_recorded_not_fatal(self):
        class ExplodingBolt(Bolt):
            def clone(self):
                return ExplodingBolt()

            def process(self, tuple_):
                if tuple_.get("bad"):
                    raise ValueError("bad tuple")

        topology = (
            TopologyBuilder().add_bolt("b", ExplodingBolt()).build()
        )
        with LocalRuntime(topology) as runtime:
            runtime.inject("b", {"bad": True})
            runtime.inject("b", {"bad": False})
            runtime.drain()
            failures = runtime.failures
            assert [(f.component, f.task_index) for f in failures] == [("b", 0)]
            assert isinstance(failures[0].error, ValueError)
            assert failures[0].tuple == {"bad": True}
            assert runtime.processed_counts()["b"] == 2
            assert runtime.failure_counts()["b"] == 1
            assert runtime.stats()["components"]["b"]["failed"] == 1

    def test_unknown_component_injection(self):
        topology = TopologyBuilder().add_bolt("b", CollectorBolt()).build()
        with LocalRuntime(topology) as runtime:
            with pytest.raises(Exception):
                runtime.inject("nope", {})

    def test_multi_hop_pipeline(self):
        topology = (
            TopologyBuilder()
            .add_bolt("first", ForwardBolt())
            .add_bolt("second", ForwardBolt())
            .add_bolt("sink", CollectorBolt())
            .connect("first", "second", ShuffleGrouping())
            .connect("second", "sink", ShuffleGrouping())
            .build()
        )
        with LocalRuntime(topology) as runtime:
            runtime.inject("first", {"hop": 0})
            assert wait_for(
                lambda: any(
                    c.received and c.received[0]["hop"] == 2
                    for c in runtime.task_components("sink")
                )
            )
